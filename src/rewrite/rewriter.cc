#include "rewrite/rewriter.h"

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "rewrite/pattern_sql.h"

namespace rfv {

namespace {

/// Counts a successful rewrite, labeled by derivation method.
void CountRewriteHit(DerivationMethod method) {
  Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_rewrite_hits_total", {{"method", DerivationMethodName(method)}},
      "Window queries answered from a materialized sequence view");
  c->Increment();
}

/// Counts the outcome of a cost-based decision; `method` is a
/// DerivationMethodName or "no-rewrite".
void CountCostDecision(const std::string& method) {
  Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_rewrite_cost_chosen_total", {{"method", method}},
      "Cost-based derivation decisions by outcome");
  c->Increment();
}

void CountCostCandidates(size_t n) {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_rewrite_cost_candidates_total", {},
      "(view, method) alternatives priced by the derivation cost model");
  c->Increment(static_cast<int64_t>(n));
}

void CountStaleStats() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_rewrite_cost_stale_stats_total", {},
      "Cost-based decisions taken on stale column statistics");
  c->Increment();
}

/// Frame → WindowSpec; nullopt for frames outside the paper's sequence
/// model (e.g. 3 PRECEDING AND 1 PRECEDING).
std::optional<WindowSpec> FrameToWindowSpec(const WindowSpecAst& over) {
  if (!over.has_frame) {
    // ORDER BY without a frame defaults to cumulative semantics.
    return WindowSpec::Cumulative();
  }
  if (over.range_mode) {
    // RANGE frames measure value distances; the paper's sequence model
    // (and therefore the view rewrite) is positional.
    return std::nullopt;
  }
  const FrameBound& lo = over.frame_lo;
  const FrameBound& hi = over.frame_hi;
  if (lo.kind == FrameBound::Kind::kUnboundedPreceding &&
      (hi.kind == FrameBound::Kind::kCurrentRow ||
       (hi.kind == FrameBound::Kind::kFollowing && hi.offset == 0) ||
       (hi.kind == FrameBound::Kind::kPreceding && hi.offset == 0))) {
    return WindowSpec::Cumulative();
  }
  int64_t l = 0;
  int64_t h = 0;
  switch (lo.kind) {
    case FrameBound::Kind::kPreceding: l = lo.offset; break;
    case FrameBound::Kind::kCurrentRow: l = 0; break;
    case FrameBound::Kind::kFollowing:
      if (lo.offset != 0) return std::nullopt;
      l = 0;
      break;
    default: return std::nullopt;
  }
  switch (hi.kind) {
    case FrameBound::Kind::kFollowing: h = hi.offset; break;
    case FrameBound::Kind::kCurrentRow: h = 0; break;
    case FrameBound::Kind::kPreceding:
      if (hi.offset != 0) return std::nullopt;
      h = 0;
      break;
    default: return std::nullopt;
  }
  if (l < 0 || h < 0 || l + h == 0) return std::nullopt;
  return WindowSpec::SlidingUnchecked(l, h);
}

bool IsPlainColumn(const AstExpr& e, std::string* name) {
  if (e.kind != AstExprKind::kColumn) return false;
  *name = ToLower(e.name);
  return true;
}

}  // namespace

std::optional<SeqQuery> Rewriter::RecognizeSimpleWindowQuery(
    const SelectStmt& stmt, bool* wants_order) {
  if (wants_order != nullptr) *wants_order = false;
  if (stmt.union_all_next != nullptr || stmt.where != nullptr ||
      !stmt.group_by.empty() || stmt.having != nullptr || stmt.limit >= 0) {
    return std::nullopt;
  }
  if (stmt.from == nullptr || stmt.from->kind != TableRef::Kind::kTable) {
    return std::nullopt;
  }
  if (stmt.select_list.size() < 2) return std::nullopt;
  const size_t partition_count = stmt.select_list.size() - 2;

  SeqQuery query;
  query.base_table = ToLower(stmt.from->table_name);

  // Items 0..k-1: partition columns (plain column references).
  for (size_t i = 0; i < partition_count; ++i) {
    const SelectItem& item = stmt.select_list[i];
    if (item.is_star || item.expr == nullptr) return std::nullopt;
    std::string name;
    if (!IsPlainColumn(*item.expr, &name)) return std::nullopt;
    query.partition_columns.push_back(std::move(name));
  }

  // Item k: the position column.
  const SelectItem& pos_item = stmt.select_list[partition_count];
  if (pos_item.is_star || pos_item.expr == nullptr) return std::nullopt;
  if (!IsPlainColumn(*pos_item.expr, &query.order_column)) {
    return std::nullopt;
  }

  // Item k+1: agg(value) OVER ([PARTITION BY p1..pk] ORDER BY pos ROWS
  // frame).
  const SelectItem& win_item = stmt.select_list[partition_count + 1];
  if (win_item.is_star || win_item.expr == nullptr) return std::nullopt;
  const AstExpr& call = *win_item.expr;
  if (call.kind != AstExprKind::kFunctionCall || call.over == nullptr) {
    return std::nullopt;
  }
  const std::string fn_name = ToUpper(call.function_name);
  if (fn_name == "SUM") {
    query.fn = SeqAggFn::kSum;
  } else if (fn_name == "MIN") {
    query.fn = SeqAggFn::kMin;
  } else if (fn_name == "MAX") {
    query.fn = SeqAggFn::kMax;
  } else if (fn_name == "AVG") {
    query.fn = SeqAggFn::kSum;
    query.is_avg = true;
  } else if (fn_name == "COUNT") {
    query.is_count = true;
  } else {
    return std::nullopt;
  }
  if (call.children.size() != 1) return std::nullopt;
  if (query.is_count && call.children[0]->kind == AstExprKind::kStar) {
    // COUNT(*) counts positions; the order column stands in as the
    // "value".
    query.value_column = query.order_column;
  } else if (!IsPlainColumn(*call.children[0], &query.value_column)) {
    return std::nullopt;
  }
  if (query.is_count && query.value_column != query.order_column) {
    // COUNT over a nullable measure is not position-trivial.
    return std::nullopt;
  }
  const WindowSpecAst& over = *call.over;
  if (over.partition_by.size() != query.partition_columns.size()) {
    return std::nullopt;
  }
  for (size_t i = 0; i < over.partition_by.size(); ++i) {
    std::string name;
    if (!IsPlainColumn(*over.partition_by[i], &name) ||
        name != query.partition_columns[i]) {
      return std::nullopt;
    }
  }
  if (over.order_by.size() != 1 || !over.order_by[0].ascending) {
    return std::nullopt;
  }
  std::string over_order;
  if (!IsPlainColumn(*over.order_by[0].expr, &over_order) ||
      over_order != query.order_column) {
    return std::nullopt;
  }
  const std::optional<WindowSpec> window = FrameToWindowSpec(over);
  if (!window.has_value()) return std::nullopt;
  query.window = *window;

  // Final ORDER BY: absent; or (unpartitioned) exactly the position
  // column ascending; or (partitioned) exactly (p1, ..., pk, pos)
  // ascending.
  if (!stmt.order_by.empty()) {
    if (partition_count == 0) {
      if (stmt.order_by.size() != 1 || !stmt.order_by[0].ascending) {
        return std::nullopt;
      }
      std::string order_col;
      const AstExpr& e = *stmt.order_by[0].expr;
      const bool ordinal_one = e.kind == AstExprKind::kLiteral &&
                               e.literal.type() == DataType::kInt64 &&
                               e.literal.AsInt() == 1;
      if (!ordinal_one) {
        if (!IsPlainColumn(e, &order_col)) return std::nullopt;
        // Accept the position column or its alias.
        const std::string alias = ToLower(pos_item.alias);
        if (order_col != query.order_column && order_col != alias) {
          return std::nullopt;
        }
      }
    } else {
      if (stmt.order_by.size() != partition_count + 1) return std::nullopt;
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        if (!stmt.order_by[i].ascending) return std::nullopt;
        std::string name;
        if (!IsPlainColumn(*stmt.order_by[i].expr, &name)) {
          return std::nullopt;
        }
        const std::string& expected = i < partition_count
                                          ? query.partition_columns[i]
                                          : query.order_column;
        if (name != expected) return std::nullopt;
      }
    }
    if (wants_order != nullptr) *wants_order = true;
  }
  return query;
}

PatternStats Rewriter::StatsForView(const SequenceViewDef& view) const {
  PatternStats stats;
  stats.body_rows = view.n;
  stats.indexed = view.indexed;
  Result<Table*> content = catalog_->GetTable(view.view_name);
  if (content.ok()) {
    // One coherent copy: pricing runs on the concurrent read path while
    // maintenance updates these fields under the table lock.
    const TableStats content_stats = (*content)->StatsSnapshot();
    stats.content_rows = content_stats.row_count;
    stats.stale = content_stats.AnyStale();
    // Position-column statistics price the index-hull and band-join
    // alternatives (PatternStats::PosDensity).
    const std::optional<size_t> pos_idx =
        (*content)->schema().TryFindColumn("", view.order_column);
    if (pos_idx.has_value() && *pos_idx < content_stats.columns.size()) {
      const ColumnStats& pos = content_stats.columns[*pos_idx];
      if (pos.has_range) {
        stats.pos_min = pos.min_value;
        stats.pos_max = pos.max_value;
      }
      stats.pos_distinct = pos.distinct_count;
    }
  } else {
    stats.content_rows = view.n;
  }
  Result<Table*> base = catalog_->GetTable(view.base_table);
  if (base.ok()) stats.base_rows = (*base)->StatsSnapshot().row_count;
  return stats;
}

Result<std::optional<RewriteResult>> Rewriter::TryRewrite(
    const SelectStmt& stmt, const RewriteOptions& options,
    RewriteDecision* decision) const {
  TraceSpan span("rewrite");
  bool wants_order = false;
  const std::optional<SeqQuery> query =
      RecognizeSimpleWindowQuery(stmt, &wants_order);
  if (!query.has_value()) {
    if (span.active()) span.AddArg("verdict", "not a simple window query");
    return std::optional<RewriteResult>();
  }
  static Counter* attempts = MetricsRegistry::Global().GetCounter(
      "rfv_rewrite_attempts_total", {},
      "Recognized window queries the rewriter tried to answer from a view");
  attempts->Increment();

  // COUNT windows are answered from positions alone (paper §2.1). The
  // rewrite fires only when some registered (non-derived) sequence view
  // over the same base/order column exists — view materialization
  // validated that the positions are dense 1..n, which the formula
  // assumes.
  if (query->is_count) {
    if (!query->partition_columns.empty()) {
      return std::optional<RewriteResult>();
    }
    const SequenceViewDef* witness = nullptr;
    for (const auto& v : views_->views()) {
      if (!v->derived && v->partition_columns.empty() &&
          EqualsIgnoreCase(v->base_table, query->base_table) &&
          EqualsIgnoreCase(v->order_column, query->order_column)) {
        witness = v.get();
        break;
      }
    }
    if (witness == nullptr) return std::optional<RewriteResult>();
    Result<Table*> base = catalog_->GetTable(query->base_table);
    if (!base.ok()) return base.status();
    RewriteResult result;
    result.sql = CountWindowSql(query->base_table, query->order_column,
                                query->window,
                                static_cast<int64_t>((*base)->NumRows()));
    if (wants_order) result.sql += " ORDER BY 1";
    result.choice.view = witness;
    result.choice.method = DerivationMethod::kCountTrivial;
    if (options.use_cost_model) {
      PatternStats stats = StatsForView(*witness);
      stats.vector_exec = options.vector_exec;
      result.cost = EstimateCountTrivialCost(stats);
    }
    if (decision != nullptr) {
      decision->summary = "count-trivial using view " + witness->view_name;
    }
    CountRewriteHit(result.choice.method);
    if (span.active()) {
      span.AddArg("view", witness->view_name);
      span.AddArg("method", "count-trivial");
    }
    RFV_LOG(kInfo) << "rewrite: count-trivial using view "
                   << witness->view_name;
    return std::optional<RewriteResult>(std::move(result));
  }

  const SeqAggFn lookup_fn = query->is_avg ? SeqAggFn::kSum : query->fn;
  const std::vector<const SequenceViewDef*> candidates =
      views_->FindCandidates(query->base_table, query->value_column,
                             query->order_column, lookup_fn,
                             query->partition_columns);
  if (candidates.empty()) {
    if (span.active()) span.AddArg("verdict", "no candidate views");
    return std::optional<RewriteResult>();
  }
  if (span.active()) {
    // One child span per candidate view with its derivability verdict;
    // this re-runs the (cheap, in-memory) derivability math purely for
    // the trace, so it is gated on tracing being active.
    for (const SequenceViewDef* view : candidates) {
      TraceSpan candidate_span("rewrite.candidate");
      candidate_span.AddArg("view", view->view_name);
      Result<DerivationChoice> verdict = CheckDerivability(*view, *query);
      candidate_span.AddArg(
          "verdict", verdict.ok()
                         ? std::string("derivable via ") +
                               DerivationMethodName(verdict->method)
                         : "not derivable: " + verdict.status().message());
    }
  }

  DerivationChoice choice;
  std::optional<CostEstimate> chosen_cost_out;
  if (options.force_method.has_value()) {
    bool found = false;
    for (const SequenceViewDef* view : candidates) {
      Result<DerivationChoice> r = CheckDerivability(*view, *query);
      if (r.ok() && r->method == *options.force_method) {
        choice = std::move(*r);
        found = true;
        break;
      }
      // A view whose automatic choice differs may still support the
      // forced method (MaxOA-eligible pairs are always MinOA-eligible).
      // Partitioned pairs never do: the MaxOA/MinOA SQL templates are
      // single-sequence (no partition column in the select list or the
      // self-join predicate), so forcing them onto a partitioned view
      // would silently collapse the partitions.
      if (!query->partition_columns.empty() ||
          !view->partition_columns.empty()) {
        continue;
      }
      if (*options.force_method == DerivationMethod::kMinoa &&
          view->window.is_sliding() && query->window.is_sliding() &&
          view->fn == SeqAggFn::kSum) {
        Result<MinoaParams> params = PlanMinoa(view->window, query->window);
        if (params.ok()) {
          choice.view = view;
          choice.method = DerivationMethod::kMinoa;
          choice.minoa = *params;
          found = true;
          break;
        }
      }
      if (*options.force_method == DerivationMethod::kMaxoa &&
          view->window.is_sliding() && query->window.is_sliding() &&
          view->fn == SeqAggFn::kSum) {
        Result<MaxoaParams> params = PlanMaxoa(view->window, query->window);
        if (params.ok() && (params->delta_l > 0 || params->delta_h > 0)) {
          choice.view = view;
          choice.method = DerivationMethod::kMaxoa;
          choice.maxoa = *params;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      if (span.active()) span.AddArg("verdict", "forced method not derivable");
      return std::optional<RewriteResult>();
    }
  } else if (options.use_cost_model) {
    // Tentpole path: price every (view, method) alternative against the
    // live statistics and against recomputing from the base table
    // (paper §7: neither MaxOA nor MinOA dominates).
    const ViewStatsFn stats_fn = [this, &options](const SequenceViewDef& v) {
      PatternStats stats = StatsForView(v);
      stats.vector_exec = options.vector_exec;
      return stats;
    };
    CostEstimate chosen_cost;
    std::vector<CandidateVerdict> verdicts;
    Result<DerivationChoice> r = ChooseDerivationByCost(
        candidates, *query, stats_fn, &chosen_cost, &verdicts);
    CountCostCandidates(verdicts.size());
    bool any_stale = false;
    for (const SequenceViewDef* v : candidates) {
      any_stale |= StatsForView(*v).stale;
    }
    if (any_stale) CountStaleStats();
    PatternStats base_stats = StatsForView(*candidates.front());
    base_stats.vector_exec = options.vector_exec;
    const CostEstimate baseline =
        EstimateSelfJoinRecomputeCost(query->window, base_stats);
    if (decision != nullptr) {
      decision->verdicts = std::move(verdicts);
      decision->baseline = baseline;
    }
    if (!r.ok()) {
      if (span.active()) span.AddArg("verdict", "no derivable candidate");
      if (decision != nullptr) decision->summary = "none (no derivable candidate)";
      return std::optional<RewriteResult>();
    }
    if (chosen_cost.total > kRewriteCostBias * baseline.total) {
      CountCostDecision("no-rewrite");
      const std::string why =
          std::string("none (recompute estimated cheaper: baseline ") +
          baseline.Summary() + " vs best " + chosen_cost.Summary() + ")";
      if (span.active()) span.AddArg("verdict", why);
      if (decision != nullptr) decision->summary = why;
      RFV_LOG(kInfo) << "rewrite declined by cost model: " << why;
      return std::optional<RewriteResult>();
    }
    CountCostDecision(DerivationMethodName(r->method));
    choice = std::move(*r);
    chosen_cost_out = chosen_cost;
  } else {
    Result<DerivationChoice> r = ChooseDerivation(candidates, *query);
    if (!r.ok()) {
      if (span.active()) span.AddArg("verdict", "no derivable candidate");
      return std::optional<RewriteResult>();
    }
    choice = std::move(*r);
  }

  const SequenceViewDef& view = *choice.view;
  const bool union_variant = options.variant == RewriteVariant::kUnion;
  std::string sql;
  switch (choice.method) {
    case DerivationMethod::kDirect:
      if (!query->partition_columns.empty()) {
        sql = PartitionedDirectSql(view.view_name, view.base_table,
                                   view.partition_columns,
                                   view.order_column);
      } else {
        sql = DirectViewSql(view.view_name, view.n);
      }
      break;
    case DerivationMethod::kCumulativeDiff:
      if (query->window.is_sliding()) {
        sql = SlidingFromCumulativeViewSql(view.view_name, query->window,
                                           view.n);
      } else {
        sql = DirectViewSql(view.view_name, view.n);
      }
      break;
    case DerivationMethod::kMaxoa:
      sql = MaxoaSql(view.view_name, choice.maxoa, view.n, union_variant);
      break;
    case DerivationMethod::kMinoa:
      if (query->window.is_cumulative()) {
        sql = MinoaCumulativeSql(view.view_name, view.window, view.n);
      } else {
        sql = MinoaSql(view.view_name, choice.minoa, view.n, union_variant);
      }
      break;
    case DerivationMethod::kMinMaxCover:
      sql = MinMaxCoverSql(view.view_name, view.fn == SeqAggFn::kMin,
                           query->window.l() - view.window.l(),
                           query->window.h() - view.window.h(), view.n);
      break;
    case DerivationMethod::kCountTrivial:
      return Status::Internal("COUNT rewrites are handled before matching");
  }
  if (query->is_avg) {
    sql = WrapAvgSql(sql, query->window, view.n);
  }
  if (wants_order) {
    // Order by the partition columns then the position (all ordinals).
    sql += " ORDER BY ";
    for (size_t i = 0; i <= query->partition_columns.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += std::to_string(i + 1);
    }
  }
  RewriteResult result;
  result.sql = std::move(sql);
  result.choice = choice;
  if (!chosen_cost_out.has_value() && options.use_cost_model) {
    // Forced-method path: still price the pattern so EXPLAIN can show
    // the estimate next to the measured rows.
    PatternStats forced_stats = StatsForView(view);
    forced_stats.vector_exec = options.vector_exec;
    chosen_cost_out = EstimateDerivationCost(choice, *query, forced_stats);
  }
  result.cost = chosen_cost_out;
  if (decision != nullptr) {
    decision->summary = std::string(DerivationMethodName(choice.method)) +
                        " using view " + view.view_name;
    if (chosen_cost_out.has_value()) {
      decision->summary += " (est " + chosen_cost_out->Summary() + ")";
    }
  }
  CountRewriteHit(choice.method);
  if (span.active()) {
    span.AddArg("view", view.view_name);
    span.AddArg("method", DerivationMethodName(choice.method));
  }
  RFV_LOG(kInfo) << "rewrite: " << DerivationMethodName(choice.method)
                 << " using view " << view.view_name;
  return std::optional<RewriteResult>(std::move(result));
}

}  // namespace rfv
