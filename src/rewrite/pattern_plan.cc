#include "rewrite/pattern_plan.h"

#include "expr/builder.h"

namespace rfv {

Result<LogicalPlanPtr> BuildNativeWindowPlan(Table* table,
                                             const std::string& pos_column,
                                             const std::string& val_column,
                                             const WindowSpec& window,
                                             AggFn fn) {
  LogicalPlanPtr scan = MakeScan(table, table->name());
  size_t pos_col = 0;
  size_t val_col = 0;
  {
    Result<size_t> r = scan->schema.FindColumn("", pos_column);
    if (!r.ok()) return r.status();
    pos_col = *r;
    r = scan->schema.FindColumn("", val_column);
    if (!r.ok()) return r.status();
    val_col = *r;
  }
  const DataType pos_type = scan->schema.column(pos_col).type;
  const DataType val_type = scan->schema.column(val_col).type;

  WindowCall call;
  call.fn = fn;
  call.arg = eb::Col(val_col, val_type, val_column);
  SortKey key;
  key.expr = eb::Col(pos_col, pos_type, pos_column);
  key.ascending = true;
  call.order_by.push_back(std::move(key));
  call.frame = window.is_cumulative()
                   ? WindowFrame::Cumulative()
                   : WindowFrame::Sliding(window.l(), window.h());
  call.output_name = "val";
  switch (fn) {
    case AggFn::kCount:
      call.output_type = DataType::kInt64;
      break;
    case AggFn::kAvg:
      call.output_type = DataType::kDouble;
      break;
    default:
      call.output_type = val_type;
      break;
  }
  const size_t out_col = scan->schema.NumColumns();
  const DataType out_type = call.output_type;

  std::vector<WindowCall> calls;
  calls.push_back(std::move(call));
  LogicalPlanPtr window_plan = MakeWindow(std::move(scan), std::move(calls));

  std::vector<ExprPtr> projections;
  projections.push_back(eb::Col(pos_col, pos_type, pos_column));
  projections.push_back(eb::Col(out_col, out_type, "val"));
  return MakeProject(std::move(window_plan), std::move(projections),
                     {"pos", "val"});
}

Result<LogicalPlanPtr> BuildViewReadPlan(Table* view_table, int64_t n) {
  LogicalPlanPtr scan = MakeScan(view_table, view_table->name());
  size_t pos_col = 0;
  size_t val_col = 0;
  {
    Result<size_t> r = scan->schema.FindColumn("", "pos");
    if (!r.ok()) return r.status();
    pos_col = *r;
    r = scan->schema.FindColumn("", "val");
    if (!r.ok()) return r.status();
    val_col = *r;
  }
  const DataType pos_type = scan->schema.column(pos_col).type;
  const DataType val_type = scan->schema.column(val_col).type;
  ExprPtr predicate = eb::Between(eb::Col(pos_col, pos_type, "pos"),
                                  eb::Int(1), eb::Int(n));
  LogicalPlanPtr filtered = MakeFilter(std::move(scan), std::move(predicate));
  std::vector<ExprPtr> projections;
  projections.push_back(eb::Col(pos_col, pos_type, "pos"));
  projections.push_back(eb::Col(val_col, val_type, "val"));
  return MakeProject(std::move(filtered), std::move(projections),
                     {"pos", "val"});
}

}  // namespace rfv
