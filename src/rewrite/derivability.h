#ifndef RFVIEW_REWRITE_DERIVABILITY_H_
#define RFVIEW_REWRITE_DERIVABILITY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sequence/maxoa.h"
#include "sequence/minoa.h"
#include "stats/cost_model.h"
#include "view/view_def.h"

namespace rfv {

/// A recognized simple reporting-function query:
///   SELECT <order col>, agg(<value col>) OVER (ORDER BY <order col>
///     ROWS <frame>) FROM <base table>
/// — the shape the rewriter can answer from materialized sequence views.
struct SeqQuery {
  std::string base_table;
  std::string order_column;
  std::string value_column;
  /// PARTITION BY columns; non-empty queries are answered from
  /// partitioned views with the identical partitioning scheme (direct
  /// hits only — per-partition derivation lives in the in-memory API,
  /// sequence/reporting.h).
  std::vector<std::string> partition_columns;
  SeqAggFn fn = SeqAggFn::kSum;
  bool is_avg = false;  ///< AVG query: answered from a SUM view plus the
                        ///< position-computable window COUNT (paper §2.1:
                        ///< "AVG may be directly derived from SUM and
                        ///< COUNT")
  bool is_count = false;  ///< COUNT(*) / COUNT(<order column>): computable
                          ///< from positions alone, no view content needed
  WindowSpec window = WindowSpec::Cumulative();
};

/// How a query can be computed from a given view.
enum class DerivationMethod {
  kDirect,          ///< identical window: read the view body
  kCumulativeDiff,  ///< sliding from cumulative (paper §3.1, Fig. 5)
  kMaxoa,           ///< paper §4, relational pattern Fig. 10
  kMinoa,           ///< paper §5, relational pattern Fig. 13
  kMinMaxCover,     ///< MIN/MAX two-window cover (paper §4.2)
  kCountTrivial,    ///< COUNT from positions alone (paper §2.1: "COUNT is
                    ///< trivial (either constant or the current position)")
};

/// Human-readable method name ("direct", "MaxOA", …) as it appears in
/// EXPLAIN output, ResultSet::rewrite_method() and metric labels.
const char* DerivationMethodName(DerivationMethod method);

/// A resolved derivation: which view answers the query and how.
struct DerivationChoice {
  const SequenceViewDef* view = nullptr;    ///< winning view (never null)
  DerivationMethod method = DerivationMethod::kDirect;  ///< how to derive
  MaxoaParams maxoa;  ///< filled for kMaxoa
  MinoaParams minoa;  ///< filled for kMinoa
};

/// Decides whether `query` is derivable from `view` and with which
/// method. Preference order for SUM: direct > cumulative-diff > MaxOA >
/// MinOA — mirroring the paper's cost discussion (§7: neither MaxOA nor
/// MinOA dominates; we default to MaxOA for its broader aggregate
/// support and let callers force either). Errors: kNotDerivable.
Result<DerivationChoice> CheckDerivability(const SequenceViewDef& view,
                                           const SeqQuery& query);

/// Picks the first derivable view in the paper's static preference
/// order; kNotDerivable when none qualifies. Kept as the stats-free
/// fallback (and as the documented paper default) — the SQL front end
/// uses ChooseDerivationByCost below.
Result<DerivationChoice> ChooseDerivation(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query);

/// One candidate (view, method) outcome of a cost-based choice; the
/// full list is surfaced by EXPLAIN and the rewrite trace.
struct CandidateVerdict {
  std::string view_name;
  bool derivable = false;
  /// Valid only when derivable.
  DerivationMethod method = DerivationMethod::kDirect;
  /// Set when statistics were available to price the alternative.
  std::optional<CostEstimate> cost;
  bool chosen = false;
  /// Cost summary, or the not-derivable reason.
  std::string detail;
};

/// Supplies content/base-table statistics for a candidate view.
using ViewStatsFn = std::function<PatternStats(const SequenceViewDef&)>;

/// Every derivable (view, method) alternative: CheckDerivability's pick
/// plus the always-applicable MinOA sibling of a MaxOA choice, so the
/// cost model can arbitrate the paper's §7 trade-off instead of the
/// static order. Not-derivable views are appended to `verdicts`.
std::vector<DerivationChoice> EnumerateDerivations(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query,
    std::vector<CandidateVerdict>* verdicts = nullptr);

/// Prices one derivation choice by mapping its method onto the pattern
/// estimators in stats/cost_model.h.
CostEstimate EstimateDerivationCost(const DerivationChoice& choice,
                                    const SeqQuery& query,
                                    const PatternStats& stats);

/// Cost-based chooser: minimizes CostEstimate::total over all
/// alternatives from EnumerateDerivations (ties resolve to the static
/// preference order, i.e. the earlier alternative). Falls back to
/// ChooseDerivation when `stats_fn` is empty. `chosen_cost` (optional)
/// receives the winner's estimate; `verdicts` (optional) the complete
/// per-alternative record with the winner flagged.
Result<DerivationChoice> ChooseDerivationByCost(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query,
    const ViewStatsFn& stats_fn, CostEstimate* chosen_cost = nullptr,
    std::vector<CandidateVerdict>* verdicts = nullptr);

}  // namespace rfv

#endif  // RFVIEW_REWRITE_DERIVABILITY_H_
