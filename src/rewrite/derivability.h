#ifndef RFVIEW_REWRITE_DERIVABILITY_H_
#define RFVIEW_REWRITE_DERIVABILITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sequence/maxoa.h"
#include "sequence/minoa.h"
#include "view/view_def.h"

namespace rfv {

/// A recognized simple reporting-function query:
///   SELECT <order col>, agg(<value col>) OVER (ORDER BY <order col>
///     ROWS <frame>) FROM <base table>
/// — the shape the rewriter can answer from materialized sequence views.
struct SeqQuery {
  std::string base_table;
  std::string order_column;
  std::string value_column;
  /// PARTITION BY columns; non-empty queries are answered from
  /// partitioned views with the identical partitioning scheme (direct
  /// hits only — per-partition derivation lives in the in-memory API,
  /// sequence/reporting.h).
  std::vector<std::string> partition_columns;
  SeqAggFn fn = SeqAggFn::kSum;
  bool is_avg = false;  ///< AVG query: answered from a SUM view plus the
                        ///< position-computable window COUNT (paper §2.1:
                        ///< "AVG may be directly derived from SUM and
                        ///< COUNT")
  bool is_count = false;  ///< COUNT(*) / COUNT(<order column>): computable
                          ///< from positions alone, no view content needed
  WindowSpec window = WindowSpec::Cumulative();
};

/// How a query can be computed from a given view.
enum class DerivationMethod {
  kDirect,          ///< identical window: read the view body
  kCumulativeDiff,  ///< sliding from cumulative (paper §3.1, Fig. 5)
  kMaxoa,           ///< paper §4, relational pattern Fig. 10
  kMinoa,           ///< paper §5, relational pattern Fig. 13
  kMinMaxCover,     ///< MIN/MAX two-window cover (paper §4.2)
  kCountTrivial,    ///< COUNT from positions alone (paper §2.1: "COUNT is
                    ///< trivial (either constant or the current position)")
};

const char* DerivationMethodName(DerivationMethod method);

struct DerivationChoice {
  const SequenceViewDef* view = nullptr;
  DerivationMethod method = DerivationMethod::kDirect;
  MaxoaParams maxoa;  ///< filled for kMaxoa
  MinoaParams minoa;  ///< filled for kMinoa
};

/// Decides whether `query` is derivable from `view` and with which
/// method. Preference order for SUM: direct > cumulative-diff > MaxOA >
/// MinOA — mirroring the paper's cost discussion (§7: neither MaxOA nor
/// MinOA dominates; we default to MaxOA for its broader aggregate
/// support and let callers force either). Errors: kNotDerivable.
Result<DerivationChoice> CheckDerivability(const SequenceViewDef& view,
                                           const SeqQuery& query);

/// Picks the first derivable view in preference order; kNotDerivable
/// when none qualifies.
Result<DerivationChoice> ChooseDerivation(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query);

}  // namespace rfv

#endif  // RFVIEW_REWRITE_DERIVABILITY_H_
