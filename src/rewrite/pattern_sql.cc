#include "rewrite/pattern_sql.h"

#include <sstream>

#include "common/logging.h"

namespace rfv {

namespace {

/// "expr", "expr + c" or "expr - c".
std::string Shift(const std::string& expr, int64_t delta) {
  if (delta == 0) return expr;
  if (delta > 0) return expr + " + " + std::to_string(delta);
  return expr + " - " + std::to_string(-delta);
}

std::string BodyRange(const std::string& pos_expr, int64_t n) {
  return pos_expr + " BETWEEN 1 AND " + std::to_string(n);
}

}  // namespace

std::string SelfJoinWindowSql(const std::string& table,
                              const std::string& pos_column,
                              const std::string& val_column,
                              const WindowSpec& window,
                              bool use_in_predicate) {
  RFV_CHECK(window.is_sliding() || window.is_cumulative());
  std::ostringstream os;
  os << "SELECT s1." << pos_column << " AS pos, SUM(s2." << val_column
     << ") AS val FROM " << table << " s1, " << table << " s2 WHERE ";
  if (window.is_cumulative()) {
    os << "s2." << pos_column << " <= s1." << pos_column;
  } else if (use_in_predicate) {
    // Paper Fig. 2: s1.pos IN (s2.pos-1, s2.pos, s2.pos+1) for (1,1).
    // s2 lies in s1's window (l,h)  ⇔  s1.pos ∈ [s2.pos-h, s2.pos+l].
    os << "s1." << pos_column << " IN (";
    bool first = true;
    for (int64_t d = -window.h(); d <= window.l(); ++d) {
      if (!first) os << ", ";
      os << Shift("s2." + pos_column, d);
      first = false;
    }
    os << ")";
  } else {
    os << "s2." << pos_column << " BETWEEN "
       << Shift("s1." + pos_column, -window.l()) << " AND "
       << Shift("s1." + pos_column, window.h());
  }
  os << " GROUP BY s1." << pos_column;
  return os.str();
}

std::string DirectViewSql(const std::string& view_table, int64_t n) {
  return "SELECT s.pos AS pos, s.val AS val FROM " + view_table +
         " s WHERE " + BodyRange("s.pos", n);
}

std::string PartitionedDirectSql(const std::string& view_table,
                                 const std::string& base_table,
                                 const std::vector<std::string>& partitions,
                                 const std::string& order_column) {
  RFV_CHECK(!partitions.empty());
  std::ostringstream os;
  os << "SELECT ";
  for (const std::string& p : partitions) {
    os << "v." << p << " AS " << p << ", ";
  }
  os << "v.pos AS pos, v.val AS val FROM " << view_table << " v JOIN "
     << base_table << " b ON ";
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (i > 0) os << " AND ";
    os << "v." << partitions[i] << " = b." << partitions[i];
  }
  os << " AND v.pos = b." << order_column;
  return os.str();
}

std::string RawFromCumulativeViewSql(const std::string& view_table,
                                     int64_t n) {
  std::ostringstream os;
  os << "SELECT s1.pos AS pos, SUM(CASE WHEN s1.pos = s2.pos THEN s2.val "
        "ELSE (-1) * s2.val END) AS val FROM "
     << view_table << " s1, " << view_table << " s2 WHERE "
     << BodyRange("s1.pos", n)
     << " AND s2.pos IN (s1.pos - 1, s1.pos) GROUP BY s1.pos";
  return os.str();
}

std::string SlidingFromCumulativeViewSql(const std::string& view_table,
                                         const WindowSpec& target,
                                         int64_t n) {
  RFV_CHECK(target.is_sliding());
  // ỹ_k = c_{min(k+h, n)} − c_{k−l−1}; the missing row at k−l−1 < 1
  // contributes 0 (a cumulative sequence's header is identically zero).
  const std::string upper =
      target.h() == 0 ? "s1.pos"
                      : "LEAST(s1.pos + " + std::to_string(target.h()) +
                            ", " + std::to_string(n) + ")";
  std::ostringstream os;
  os << "SELECT s1.pos AS pos, SUM(CASE WHEN s2.pos = " << upper
     << " THEN s2.val ELSE (-1) * s2.val END) AS val FROM " << view_table
     << " s1, " << view_table << " s2 WHERE " << BodyRange("s1.pos", n)
     << " AND s2.pos IN (" << upper << ", "
     << Shift("s1.pos", -target.l() - 1) << ") GROUP BY s1.pos";
  return os.str();
}

namespace {

/// Branch predicates and sign classes of the MaxOA explicit form. The
/// left-side chains step by P = Δl+Δp, the right-side chains by
/// Q = Δh+Δq (paper §4.1/§4.2):
///   positive: x̃_{k−iP} (i>=1)                — class k mod P, below k
///   negative: x̃_{k−Δl−iP} (i>=1)             — class k−Δl mod P, below k−P
///   positive: x̃_{k+iQ} (i>=1)                — class k mod Q, above k
///   negative: x̃_{k+Δh+iQ} (i>=1)             — class k+Δh mod Q, above k+Q
struct MaxoaBranches {
  std::vector<std::string> positive;
  std::vector<std::string> negative;
  std::string positive_class;  ///< CASE condition marking positive rows
};

MaxoaBranches BuildMaxoaBranches(const MaxoaParams& params) {
  MaxoaBranches branches;
  std::vector<std::string> pos_class_terms;
  if (params.delta_l > 0) {
    const std::string p = std::to_string(params.delta_l + params.delta_p);
    const std::string pos_cond = "((s1.pos > s2.pos) AND (MOD(s1.pos, " + p +
                                 ") = MOD(s2.pos, " + p + ")))";
    branches.positive.push_back(pos_cond);
    pos_class_terms.push_back("((s2.pos < s1.pos) AND (MOD(s1.pos, " + p +
                              ") = MOD(s2.pos, " + p + ")))");
    branches.negative.push_back(
        "((s1.pos - " + p + " > s2.pos) AND (MOD(" +
        Shift("s1.pos", -params.delta_l) + ", " + p + ") = MOD(s2.pos, " + p +
        ")))");
  }
  if (params.delta_h > 0) {
    const std::string q = std::to_string(params.delta_h + params.delta_q);
    branches.positive.push_back("((s2.pos > s1.pos) AND (MOD(s1.pos, " + q +
                                ") = MOD(s2.pos, " + q + ")))");
    pos_class_terms.push_back("((s2.pos > s1.pos) AND (MOD(s1.pos, " + q +
                              ") = MOD(s2.pos, " + q + ")))");
    branches.negative.push_back(
        "((s2.pos > s1.pos + " + q + ") AND (MOD(" +
        Shift("s1.pos", params.delta_h) + ", " + q + ") = MOD(s2.pos, " + q +
        ")))");
  }
  std::string cls;
  for (const std::string& t : pos_class_terms) {
    cls = cls.empty() ? t : cls + " OR " + t;
  }
  branches.positive_class = cls;
  return branches;
}

}  // namespace

std::string MaxoaSql(const std::string& view_table, const MaxoaParams& params,
                     int64_t n, bool union_variant) {
  RFV_CHECK(params.delta_l > 0 || params.delta_h > 0);
  const MaxoaBranches branches = BuildMaxoaBranches(params);

  if (union_variant) {
    // Base row plus one simple-predicate query per chain, re-grouped.
    std::ostringstream os;
    os << "SELECT u.pos AS pos, SUM(u.val) AS val FROM (";
    os << "SELECT s.pos AS pos, s.val AS val FROM " << view_table
       << " s WHERE " << BodyRange("s.pos", n);
    for (const std::string& b : branches.positive) {
      os << " UNION ALL SELECT s1.pos AS pos, s2.val AS val FROM "
         << view_table << " s1, " << view_table << " s2 WHERE "
         << BodyRange("s1.pos", n) << " AND " << b;
    }
    for (const std::string& b : branches.negative) {
      os << " UNION ALL SELECT s1.pos AS pos, (-1) * s2.val AS val FROM "
         << view_table << " s1, " << view_table << " s2 WHERE "
         << BodyRange("s1.pos", n) << " AND " << b;
    }
    os << ") u GROUP BY u.pos";
    return os.str();
  }

  // Disjunctive variant (paper Fig. 10): one self join whose predicate
  // is the OR of all chain branches; CASE gives chain terms their sign;
  // a left outer join preserves positions with no compensation terms.
  std::string disjunction;
  for (const std::string& b : branches.positive) {
    disjunction = disjunction.empty() ? b : disjunction + " OR " + b;
  }
  for (const std::string& b : branches.negative) {
    disjunction = disjunction.empty() ? b : disjunction + " OR " + b;
  }
  std::ostringstream os;
  os << "SELECT s.pos AS pos, s.val + COALESCE(c.val, 0) AS val FROM "
     << view_table << " s LEFT OUTER JOIN (SELECT s1.pos AS pos, "
     << "SUM(CASE WHEN " << branches.positive_class
     << " THEN s2.val ELSE (-1) * s2.val END) AS val FROM " << view_table
     << " s1, " << view_table << " s2 WHERE " << BodyRange("s1.pos", n)
     << " AND (" << disjunction << ") GROUP BY s1.pos) c ON s.pos = c.pos "
     << "WHERE " << BodyRange("s.pos", n);
  return os.str();
}

namespace {

struct MinoaBranches {
  std::string positive;
  std::string negative;        ///< empty in the coincident-class case
  std::string positive_class;  ///< CASE condition marking positive rows
};

MinoaBranches BuildMinoaBranches(const MinoaParams& params) {
  MinoaBranches branches;
  const std::string w = std::to_string(params.wx);
  const std::string pos_head = Shift("s1.pos", params.delta_h);
  const std::string neg_head = Shift("s1.pos", -params.delta_l);
  const std::string pos_class =
      "(MOD(" + pos_head + ", " + w + ") = MOD(s2.pos, " + w + "))";

  if ((params.delta_l + params.delta_h) % params.wx == 0) {
    // Coincident congruence classes: the chains cancel beyond
    // m = (Δl+Δh)/w_x terms, leaving the bounded positive chain
    // x̃_{k−Δl}, x̃_{k−Δl+w}, ..., x̃_{k+Δh} — all positive.
    branches.positive = "(" + pos_class + " AND s2.pos BETWEEN " + neg_head +
                        " AND " + pos_head + ")";
    branches.positive_class = pos_class;
    return branches;
  }
  branches.positive =
      "((s2.pos <= " + pos_head + ") AND " + pos_class + ")";
  branches.negative = "((s2.pos <= " + Shift(neg_head, -params.wx) +
                      ") AND (MOD(" + neg_head + ", " + w +
                      ") = MOD(s2.pos, " + w + ")))";
  branches.positive_class = pos_class;
  return branches;
}

}  // namespace

std::string MinoaSql(const std::string& view_table, const MinoaParams& params,
                     int64_t n, bool union_variant) {
  const MinoaBranches branches = BuildMinoaBranches(params);

  if (union_variant) {
    std::ostringstream os;
    os << "SELECT u.pos AS pos, SUM(u.val) AS val FROM (";
    os << "SELECT s1.pos AS pos, s2.val AS val FROM " << view_table
       << " s1, " << view_table << " s2 WHERE " << BodyRange("s1.pos", n)
       << " AND " << branches.positive;
    if (!branches.negative.empty()) {
      os << " UNION ALL SELECT s1.pos AS pos, (-1) * s2.val AS val FROM "
         << view_table << " s1, " << view_table << " s2 WHERE "
         << BodyRange("s1.pos", n) << " AND " << branches.negative;
    }
    os << ") u GROUP BY u.pos";
    return os.str();
  }

  // Disjunctive variant (paper Fig. 13): single self join, CASE signs.
  std::string predicate = branches.positive;
  if (!branches.negative.empty()) {
    predicate = "(" + branches.positive + " OR " + branches.negative + ")";
  }
  std::ostringstream os;
  os << "SELECT s1.pos AS pos, SUM(CASE WHEN " << branches.positive_class
     << " THEN s2.val ELSE (-1) * s2.val END) AS val FROM " << view_table
     << " s1, " << view_table << " s2 WHERE " << BodyRange("s1.pos", n)
     << " AND " << predicate << " GROUP BY s1.pos";
  return os.str();
}

std::string MinoaCumulativeSql(const std::string& view_table,
                               const WindowSpec& view_window, int64_t n) {
  RFV_CHECK(view_window.is_sliding());
  const std::string w = std::to_string(view_window.size());
  const std::string head = Shift("s1.pos", -view_window.h());
  std::ostringstream os;
  os << "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM " << view_table
     << " s1, " << view_table << " s2 WHERE " << BodyRange("s1.pos", n)
     << " AND (s2.pos <= " << head << ") AND (MOD(" << head << ", " << w
     << ") = MOD(s2.pos, " << w << ")) GROUP BY s1.pos";
  return os.str();
}

std::string RawFromSlidingViewSql(const std::string& view_table,
                                  const WindowSpec& view_window, int64_t n) {
  RFV_CHECK(view_window.is_sliding());
  // MinOA with Δl = −l_x, Δh = −h_x. The two congruence classes never
  // coincide (Δl + Δh = 1 − w_x ≢ 0 mod w_x for w_x >= 2).
  MinoaParams params;
  params.delta_l = -view_window.l();
  params.delta_h = -view_window.h();
  params.wx = view_window.size();
  return MinoaSql(view_table, params, n, /*union_variant=*/false);
}

std::string MinMaxCoverSql(const std::string& view_table, bool is_min,
                           int64_t delta_l, int64_t delta_h, int64_t n) {
  // ỹ_k = LEAST/GREATEST(x̃_{k−Δl}, x̃_{k+Δh}); positions outside the
  // stored range read as 0 via COALESCE, matching the paper's zero
  // padding of raw values outside [1, n].
  const std::string fn = is_min ? "LEAST" : "GREATEST";
  std::ostringstream os;
  os << "SELECT s.pos AS pos, " << fn << "(COALESCE(a.val, 0), "
     << "COALESCE(b.val, 0)) AS val FROM " << view_table
     << " s LEFT OUTER JOIN " << view_table << " a ON a.pos = "
     << Shift("s.pos", -delta_l) << " LEFT OUTER JOIN " << view_table
     << " b ON b.pos = " << Shift("s.pos", delta_h) << " WHERE "
     << BodyRange("s.pos", n);
  return os.str();
}

std::string CountWindowSql(const std::string& base_table,
                           const std::string& order_column,
                           const WindowSpec& window, int64_t n) {
  if (window.is_cumulative()) {
    // The running count *is* the current position.
    return "SELECT " + order_column + " AS pos, " + order_column +
           " AS val FROM " + base_table;
  }
  return "SELECT " + order_column + " AS pos, LEAST(" + order_column +
         " + " + std::to_string(window.h()) + ", " + std::to_string(n) +
         ") - GREATEST(" + order_column + " - " +
         std::to_string(window.l()) + ", 1) + 1 AS val FROM " + base_table;
}

std::string WrapAvgSql(const std::string& sum_sql, const WindowSpec& window,
                       int64_t n) {
  std::string count_expr;
  if (window.is_cumulative()) {
    count_expr = "a.pos";
  } else {
    count_expr = "(LEAST(a.pos + " + std::to_string(window.h()) + ", " +
                 std::to_string(n) + ") - GREATEST(a.pos - " +
                 std::to_string(window.l()) + ", 1) + 1)";
  }
  return "SELECT a.pos AS pos, a.val / " + count_expr + " AS val FROM (" +
         sum_sql + ") a";
}

}  // namespace rfv
