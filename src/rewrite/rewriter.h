#ifndef RFVIEW_REWRITE_REWRITER_H_
#define RFVIEW_REWRITE_REWRITER_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "parser/ast.h"
#include "rewrite/derivability.h"
#include "view/view_manager.h"

namespace rfv {

/// The two relational implementations of each derivation pattern that
/// the paper benchmarks against each other in Table 2.
enum class RewriteVariant {
  kDisjunctive,  ///< single self join with a disjunctive predicate
  kUnion,        ///< UNION ALL of simple-predicate queries
};

struct RewriteOptions {
  RewriteVariant variant = RewriteVariant::kDisjunctive;
  /// Force a specific derivation method (MaxOA vs. MinOA comparison);
  /// unset = automatic choice.
  std::optional<DerivationMethod> force_method;
  /// Automatic choice drives ChooseDerivationByCost over live table
  /// statistics, including the no-rewrite comparison below; off =
  /// the paper's static preference order, always rewriting.
  bool use_cost_model = true;
  /// Whether the session executes plans in vectorized mode
  /// (ExecOptions::use_vectorized_execution). Stamped into
  /// PatternStats::vector_exec so the cost model prices the band-merge
  /// and hash-join alternatives at their vector-native paths
  /// (`join=band+vec` / `join=hash+vec` in EXPLAIN).
  bool vector_exec = false;
};

/// The cost model keeps the view rewrite unless recompute is estimated
/// cheaper by more than this factor. The margin is deliberately wide:
/// with every pattern priced against the engine's cheapest join
/// strategy (PriceJoin — the merge band join for the congruence
/// disjunctions, the index hull or band for Fig. 2's BETWEEN), the
/// quadratic all-pairs floor is gone from both sides and the ratio is
/// carried by candidate counts and tuple fan-in. The derivation's
/// stride chains touch ~2·k̄/w_x candidates per output row against the
/// baseline's w_y, a structural ~3–5× at typical Table-2 shapes —
/// overhead the unit model overstates because the view rows are
/// pre-aggregated windows. The gate therefore only declines when chain
/// fan-out dominates outright: degenerate narrow-stride derivations
/// (w_x → 2) drag ~n/2 view tuples per output row through the
/// aggregation and estimate at ≳8× baseline, while every healthy
/// configuration sits at ≲5×. See docs/COST_MODEL.md §"No-rewrite
/// decision".
inline constexpr double kRewriteCostBias = 6.0;

struct RewriteResult {
  std::string sql;  ///< rewritten query over the view's content table
  DerivationChoice choice;
  /// Estimated cost of the chosen pattern (set when the cost model ran).
  std::optional<CostEstimate> cost;
};

/// Why/how the rewriter decided — captured even when the answer is "no
/// rewrite", so plain EXPLAIN can print the per-candidate verdicts
/// without tracing enabled.
struct RewriteDecision {
  /// One entry per (view, method) alternative, plus not-derivable views.
  std::vector<CandidateVerdict> verdicts;
  /// Estimated cost of recomputing from the base table (Fig. 2 pattern);
  /// set when the cost model ran.
  std::optional<CostEstimate> baseline;
  /// Human-readable outcome, e.g. "MinOA using view v" or
  /// "none (recompute estimated cheaper: ...)". Empty when the statement
  /// was not a recognizable window query.
  std::string summary;
};

/// The view-rewriting front end (paper §1: "the given operator patterns
/// may be applied in query rewrite directly after parsing the query
/// exhibiting a reporting function"). Recognizes simple
/// reporting-function queries, matches them against the registered
/// materialized sequence views, and emits the Fig. 4/5/10/13 SQL
/// pattern that answers the query from the view.
class Rewriter {
 public:
  Rewriter(Catalog* catalog, ViewManager* views)
      : catalog_(catalog), views_(views) {}

  /// Attempts the rewrite. Returns nullopt (not an error) when the
  /// statement is not a recognizable simple window query, no registered
  /// view can answer it, or the cost model prefers recomputing from the
  /// base table. `decision` (optional) receives the candidate verdicts
  /// and cost estimates either way.
  Result<std::optional<RewriteResult>> TryRewrite(
      const SelectStmt& stmt, const RewriteOptions& options = {},
      RewriteDecision* decision = nullptr) const;

  /// Parses `SELECT <pos>, agg(<val>) OVER (ORDER BY <pos> ROWS ...)
  /// FROM <base> [ORDER BY <pos>]` into a SeqQuery. nullopt when the
  /// statement has any other shape. `wants_order` reports whether the
  /// statement had a final ORDER BY (the rewrite re-appends it).
  static std::optional<SeqQuery> RecognizeSimpleWindowQuery(
      const SelectStmt& stmt, bool* wants_order);

 private:
  /// Harvests PatternStats for a candidate view from the live table
  /// statistics (content row count, base row count, staleness).
  PatternStats StatsForView(const SequenceViewDef& view) const;

  Catalog* catalog_;
  ViewManager* views_;
};

}  // namespace rfv

#endif  // RFVIEW_REWRITE_REWRITER_H_
