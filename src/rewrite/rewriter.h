#ifndef RFVIEW_REWRITE_REWRITER_H_
#define RFVIEW_REWRITE_REWRITER_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "parser/ast.h"
#include "rewrite/derivability.h"
#include "view/view_manager.h"

namespace rfv {

/// The two relational implementations of each derivation pattern that
/// the paper benchmarks against each other in Table 2.
enum class RewriteVariant {
  kDisjunctive,  ///< single self join with a disjunctive predicate
  kUnion,        ///< UNION ALL of simple-predicate queries
};

struct RewriteOptions {
  RewriteVariant variant = RewriteVariant::kDisjunctive;
  /// Force a specific derivation method (MaxOA vs. MinOA comparison);
  /// unset = automatic preference order.
  std::optional<DerivationMethod> force_method;
};

struct RewriteResult {
  std::string sql;  ///< rewritten query over the view's content table
  DerivationChoice choice;
};

/// The view-rewriting front end (paper §1: "the given operator patterns
/// may be applied in query rewrite directly after parsing the query
/// exhibiting a reporting function"). Recognizes simple
/// reporting-function queries, matches them against the registered
/// materialized sequence views, and emits the Fig. 4/5/10/13 SQL
/// pattern that answers the query from the view.
class Rewriter {
 public:
  Rewriter(Catalog* catalog, ViewManager* views)
      : catalog_(catalog), views_(views) {}

  /// Attempts the rewrite. Returns nullopt (not an error) when the
  /// statement is not a recognizable simple window query or no
  /// registered view can answer it.
  Result<std::optional<RewriteResult>> TryRewrite(
      const SelectStmt& stmt, const RewriteOptions& options = {}) const;

  /// Parses `SELECT <pos>, agg(<val>) OVER (ORDER BY <pos> ROWS ...)
  /// FROM <base> [ORDER BY <pos>]` into a SeqQuery. nullopt when the
  /// statement has any other shape. `wants_order` reports whether the
  /// statement had a final ORDER BY (the rewrite re-appends it).
  static std::optional<SeqQuery> RecognizeSimpleWindowQuery(
      const SelectStmt& stmt, bool* wants_order);

 private:
  Catalog* catalog_;
  ViewManager* views_;
};

}  // namespace rfv

#endif  // RFVIEW_REWRITE_REWRITER_H_
