#ifndef RFVIEW_REWRITE_PATTERN_SQL_H_
#define RFVIEW_REWRITE_PATTERN_SQL_H_

#include <string>
#include <vector>

#include "sequence/maxoa.h"
#include "sequence/minoa.h"
#include "sequence/window_spec.h"

namespace rfv {

/// Generators for the paper's relational operator patterns as SQL text.
/// Each returns a SELECT with output columns (pos, val) for positions
/// 1..n and **no** trailing ORDER BY (the rewriter appends one). The
/// patterns run on any engine without native reporting functionality —
/// "applied in query rewrite directly after parsing" (paper §1) — and
/// therefore use only joins, CASE, MOD, COALESCE and grouping.
///
/// Note on MOD: the generated congruence predicates assume MOD with the
/// divisor's sign (mathematical modulo), which this engine implements;
/// complete sequences contain positions <= 0 whose congruence class
/// would break under C-style MOD.

/// Paper Fig. 2 — compute a sliding window over raw data by self join.
/// `use_in_predicate` reproduces the paper's `s1.pos IN (s2.pos-1, ...)`
/// form (w candidate terms); otherwise a BETWEEN range predicate is
/// emitted.
std::string SelfJoinWindowSql(const std::string& table,
                              const std::string& pos_column,
                              const std::string& val_column,
                              const WindowSpec& window,
                              bool use_in_predicate);

/// Read a view body verbatim (direct hit).
std::string DirectViewSql(const std::string& view_table, int64_t n);

/// Direct hit on a *partitioned* view: per-partition body lengths vary,
/// so the body is selected by joining back to the base table on
/// (partition columns, position) — header/trailer rows have no base
/// counterpart and drop out.
std::string PartitionedDirectSql(const std::string& view_table,
                                 const std::string& base_table,
                                 const std::vector<std::string>& partitions,
                                 const std::string& order_column);

/// Paper Fig. 4 — reconstruct raw values from a cumulative view:
/// x_k = c_k − c_{k−1} via self join + CASE negation + grouping.
std::string RawFromCumulativeViewSql(const std::string& view_table,
                                     int64_t n);

/// Paper Fig. 5 adaptation — sliding (l,h) from a cumulative view:
/// ỹ_k = c_{min(k+h, n)} − c_{k−l−1}.
std::string SlidingFromCumulativeViewSql(const std::string& view_table,
                                         const WindowSpec& target, int64_t n);

/// Paper Fig. 10 — MaxOA explicit form over a complete sliding view.
/// `union_variant` selects the paper's "union of simple predicate
/// queries" implementation; otherwise the single disjunctive join
/// predicate with CASE-signed grouping and a final left outer join
/// (COALESCE) preserving positions without compensation terms.
std::string MaxoaSql(const std::string& view_table, const MaxoaParams& params,
                     int64_t n, bool union_variant);

/// Paper Fig. 13 — MinOA explicit form over a complete sliding view,
/// disjunctive or union variant. Handles the coincident-class case
/// (Δl+Δh ≡ 0 mod w_x) with the single-chain specialization.
std::string MinoaSql(const std::string& view_table, const MinoaParams& params,
                     int64_t n, bool union_variant);

/// Cumulative query from a sliding view: the positive MinOA chain only.
std::string MinoaCumulativeSql(const std::string& view_table,
                               const WindowSpec& view_window, int64_t n);

/// Paper §3.2 — reconstruct the raw data values x_1..x_n from a complete
/// sliding view: the MinOA chain with (l_y, h_y) = (0, 0), i.e.
/// x_k = Σ_{i>=0} ( x̃_{k−h−i·w} − x̃_{k−h−1−i·w} ).
std::string RawFromSlidingViewSql(const std::string& view_table,
                                  const WindowSpec& view_window, int64_t n);

/// MIN/MAX two-window cover (paper §4.2): ỹ_k =
/// LEAST/GREATEST(x̃_{k−Δl}, x̃_{k+Δh}) via two index-friendly self
/// joins.
std::string MinMaxCoverSql(const std::string& view_table, bool is_min,
                           int64_t delta_l, int64_t delta_h, int64_t n);

/// Wraps a (pos, val) SUM pattern into an AVG by dividing through the
/// position-computable window COUNT (paper §2.1: AVG = SUM / COUNT).
std::string WrapAvgSql(const std::string& sum_sql, const WindowSpec& window,
                       int64_t n);

/// COUNT window from positions alone (paper §2.1: "COUNT is trivial
/// (either constant or the current position)") — no view content is
/// read; the dense position column carries all the information.
std::string CountWindowSql(const std::string& base_table,
                           const std::string& order_column,
                           const WindowSpec& window, int64_t n);

}  // namespace rfv

#endif  // RFVIEW_REWRITE_PATTERN_SQL_H_
