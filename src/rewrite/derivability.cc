#include "rewrite/derivability.h"

#include "common/str_util.h"

namespace rfv {

const char* DerivationMethodName(DerivationMethod method) {
  switch (method) {
    case DerivationMethod::kDirect: return "direct";
    case DerivationMethod::kCumulativeDiff: return "cumulative-diff";
    case DerivationMethod::kMaxoa: return "MaxOA";
    case DerivationMethod::kMinoa: return "MinOA";
    case DerivationMethod::kMinMaxCover: return "min-max-cover";
    case DerivationMethod::kCountTrivial: return "count-trivial";
  }
  return "?";
}

Result<DerivationChoice> CheckDerivability(const SequenceViewDef& view,
                                           const SeqQuery& query) {
  DerivationChoice choice;
  choice.view = &view;

  // The view must aggregate the same measure in the same order. AVG
  // queries require a SUM view (AVG = SUM / COUNT, with COUNT computable
  // from positions alone).
  const SeqAggFn needed_fn = query.is_avg ? SeqAggFn::kSum : query.fn;
  if (view.fn != needed_fn) {
    return Status::NotDerivable("aggregation function mismatch");
  }
  if (!query.partition_columns.empty()) {
    // Partitioned query: direct hit on an identically partitioned view
    // only (per-partition derivations are served by the in-memory API).
    if (view.partition_columns.size() != query.partition_columns.size()) {
      return Status::NotDerivable("partitioning scheme mismatch");
    }
    for (size_t i = 0; i < view.partition_columns.size(); ++i) {
      if (!EqualsIgnoreCase(view.partition_columns[i],
                            query.partition_columns[i])) {
        return Status::NotDerivable("partitioning scheme mismatch");
      }
    }
    if (query.is_avg) {
      return Status::NotDerivable(
          "AVG over partitions needs per-partition cardinalities");
    }
    if (view.window != query.window) {
      return Status::NotDerivable(
          "partitioned rewriting supports identical windows only");
    }
    choice.method = DerivationMethod::kDirect;
    return choice;
  }
  if (!view.partition_columns.empty()) {
    return Status::NotDerivable(
        "partitioned views require partitioning reduction (in-memory API)");
  }

  // Identical window: direct hit.
  if (view.window == query.window) {
    choice.method = DerivationMethod::kDirect;
    return choice;
  }

  // Cumulative view: dominates every sliding window for SUM.
  if (view.window.is_cumulative()) {
    if (view.fn != SeqAggFn::kSum) {
      return Status::NotDerivable(
          "running MIN/MAX views cannot be narrowed (not invertible)");
    }
    if (!query.window.is_sliding()) {
      return Status::NotDerivable("window mismatch");
    }
    choice.method = DerivationMethod::kCumulativeDiff;
    return choice;
  }

  // Sliding view.
  if (!query.window.is_sliding()) {
    // Cumulative query from a sliding SUM view is the positive MinOA
    // chain.
    if (view.fn == SeqAggFn::kSum && query.window.is_cumulative()) {
      choice.method = DerivationMethod::kMinoa;
      Result<MinoaParams> params = PlanMinoa(
          view.window, WindowSpec::SlidingUnchecked(0, 0));
      // PlanMinoa never fails for sliding windows; the cumulative target
      // is encoded as h_y = 0 with an unbounded l_y handled by the
      // executor-side chain (see pattern_sql/MinoaCumulative).
      if (!params.ok()) return params.status();
      choice.minoa = *params;
      return choice;
    }
    return Status::NotDerivable("window mismatch");
  }

  if (view.fn == SeqAggFn::kMin || view.fn == SeqAggFn::kMax) {
    const int64_t delta_l = query.window.l() - view.window.l();
    const int64_t delta_h = query.window.h() - view.window.h();
    // Same conditions as DeriveMaxoaMinMax: containment plus
    // Δl <= h_x and Δh <= l_x (clipped-window coverage, gap-free).
    if (delta_l < 0 || delta_h < 0 || delta_l > view.window.h() ||
        delta_h > view.window.l()) {
      return Status::NotDerivable(
          "MIN/MAX cover conditions violated (gap or shrink)");
    }
    choice.method = DerivationMethod::kMinMaxCover;
    return choice;
  }

  // SUM sliding-from-sliding: prefer MaxOA when its preconditions hold,
  // otherwise MinOA (always applicable).
  Result<MaxoaParams> maxoa = PlanMaxoa(view.window, query.window);
  if (maxoa.ok()) {
    choice.method = DerivationMethod::kMaxoa;
    choice.maxoa = *maxoa;
    return choice;
  }
  Result<MinoaParams> minoa = PlanMinoa(view.window, query.window);
  if (minoa.ok()) {
    choice.method = DerivationMethod::kMinoa;
    choice.minoa = *minoa;
    return choice;
  }
  return minoa.status();
}

Result<DerivationChoice> ChooseDerivation(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query) {
  Result<DerivationChoice> best =
      Status::NotDerivable("no candidate view matches the query");
  int best_rank = -1;
  for (const SequenceViewDef* view : views) {
    Result<DerivationChoice> choice = CheckDerivability(*view, query);
    if (!choice.ok()) continue;
    int rank = 0;
    switch (choice->method) {
      case DerivationMethod::kDirect: rank = 4; break;
      case DerivationMethod::kCumulativeDiff: rank = 3; break;
      case DerivationMethod::kMinMaxCover: rank = 3; break;
      case DerivationMethod::kCountTrivial: rank = 5; break;
      case DerivationMethod::kMaxoa: rank = 2; break;
      case DerivationMethod::kMinoa: rank = 1; break;
    }
    if (rank > best_rank) {
      best_rank = rank;
      best = std::move(choice);
    }
  }
  return best;
}

std::vector<DerivationChoice> EnumerateDerivations(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query,
    std::vector<CandidateVerdict>* verdicts) {
  std::vector<DerivationChoice> out;
  for (const SequenceViewDef* view : views) {
    Result<DerivationChoice> choice = CheckDerivability(*view, query);
    if (!choice.ok()) {
      if (verdicts != nullptr) {
        CandidateVerdict v;
        v.view_name = view->view_name;
        v.derivable = false;
        v.detail = "not derivable: " + choice.status().message();
        verdicts->push_back(std::move(v));
      }
      continue;
    }
    out.push_back(*choice);
    // CheckDerivability prefers MaxOA for sliding-from-sliding SUM, but
    // every MaxOA-eligible pair is also MinOA-eligible (§5 imposes no
    // window-size precondition) — expose the sibling so cost decides.
    if (choice->method == DerivationMethod::kMaxoa) {
      Result<MinoaParams> minoa = PlanMinoa(view->window, query.window);
      if (minoa.ok()) {
        DerivationChoice alt;
        alt.view = view;
        alt.method = DerivationMethod::kMinoa;
        alt.minoa = *minoa;
        out.push_back(alt);
      }
    }
  }
  return out;
}

CostEstimate EstimateDerivationCost(const DerivationChoice& choice,
                                    const SeqQuery& query,
                                    const PatternStats& stats) {
  switch (choice.method) {
    case DerivationMethod::kDirect:
      return EstimateDirectCost(stats);
    case DerivationMethod::kCumulativeDiff:
      return EstimateCumulativeDiffCost(stats);
    case DerivationMethod::kMaxoa:
      return EstimateMaxoaCost(choice.view->window, choice.maxoa, stats);
    case DerivationMethod::kMinoa:
      return EstimateMinoaCost(choice.view->window, choice.minoa, stats);
    case DerivationMethod::kMinMaxCover:
      return EstimateMinMaxCoverCost(stats);
    case DerivationMethod::kCountTrivial:
      return EstimateCountTrivialCost(stats);
  }
  (void)query;
  return CostEstimate();
}

Result<DerivationChoice> ChooseDerivationByCost(
    const std::vector<const SequenceViewDef*>& views, const SeqQuery& query,
    const ViewStatsFn& stats_fn, CostEstimate* chosen_cost,
    std::vector<CandidateVerdict>* verdicts) {
  if (!stats_fn) return ChooseDerivation(views, query);
  std::vector<DerivationChoice> alternatives =
      EnumerateDerivations(views, query, verdicts);
  if (alternatives.empty()) {
    return Status::NotDerivable("no candidate view matches the query");
  }
  size_t best = 0;
  size_t best_verdict = 0;
  CostEstimate best_cost;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    const DerivationChoice& alt = alternatives[i];
    const CostEstimate cost =
        EstimateDerivationCost(alt, query, stats_fn(*alt.view));
    if (verdicts != nullptr) {
      CandidateVerdict v;
      v.view_name = alt.view->view_name;
      v.derivable = true;
      v.method = alt.method;
      v.cost = cost;
      v.detail = cost.Summary();
      verdicts->push_back(std::move(v));
    }
    if (i == 0 || cost.total < best_cost.total) {
      best = i;
      best_cost = cost;
      if (verdicts != nullptr) best_verdict = verdicts->size() - 1;
    }
  }
  if (verdicts != nullptr) (*verdicts)[best_verdict].chosen = true;
  if (chosen_cost != nullptr) *chosen_cost = best_cost;
  return alternatives[best];
}

}  // namespace rfv
