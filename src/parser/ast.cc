#include "parser/ast.h"

#include <sstream>

namespace rfv {

namespace {

const char* AstBinaryOpSymbol(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd: return "+";
    case AstBinaryOp::kSub: return "-";
    case AstBinaryOp::kMul: return "*";
    case AstBinaryOp::kDiv: return "/";
    case AstBinaryOp::kMod: return "%";
    case AstBinaryOp::kEq: return "=";
    case AstBinaryOp::kNe: return "<>";
    case AstBinaryOp::kLt: return "<";
    case AstBinaryOp::kLe: return "<=";
    case AstBinaryOp::kGt: return ">";
    case AstBinaryOp::kGe: return ">=";
    case AstBinaryOp::kAnd: return "AND";
    case AstBinaryOp::kOr: return "OR";
  }
  return "?";
}

std::string FrameBoundToString(const FrameBound& b) {
  switch (b.kind) {
    case FrameBound::Kind::kUnboundedPreceding: return "UNBOUNDED PRECEDING";
    case FrameBound::Kind::kPreceding:
      return std::to_string(b.offset) + " PRECEDING";
    case FrameBound::Kind::kCurrentRow: return "CURRENT ROW";
    case FrameBound::Kind::kFollowing:
      return std::to_string(b.offset) + " FOLLOWING";
    case FrameBound::Kind::kUnboundedFollowing: return "UNBOUNDED FOLLOWING";
  }
  return "?";
}

}  // namespace

std::string AstExpr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case AstExprKind::kLiteral:
      os << literal.ToString();
      break;
    case AstExprKind::kColumn:
      if (!qualifier.empty()) os << qualifier << ".";
      os << name;
      break;
    case AstExprKind::kStar:
      os << "*";
      break;
    case AstExprKind::kUnary:
      os << (unary_op == AstUnaryOp::kNot ? "NOT " : "-")
         << children[0]->ToString();
      break;
    case AstExprKind::kBinary:
      os << "(" << children[0]->ToString() << " "
         << AstBinaryOpSymbol(binary_op) << " " << children[1]->ToString()
         << ")";
      break;
    case AstExprKind::kCase: {
      os << "CASE";
      const size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        os << " WHEN " << children[2 * i]->ToString() << " THEN "
           << children[2 * i + 1]->ToString();
      }
      if (has_else) os << " ELSE " << children.back()->ToString();
      os << " END";
      break;
    }
    case AstExprKind::kFunctionCall: {
      os << function_name << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ", ";
        os << children[i]->ToString();
      }
      os << ")";
      if (over != nullptr) {
        os << " OVER (";
        bool space = false;
        if (!over->partition_by.empty()) {
          os << "PARTITION BY ";
          for (size_t i = 0; i < over->partition_by.size(); ++i) {
            if (i > 0) os << ", ";
            os << over->partition_by[i]->ToString();
          }
          space = true;
        }
        if (!over->order_by.empty()) {
          if (space) os << " ";
          os << "ORDER BY ";
          for (size_t i = 0; i < over->order_by.size(); ++i) {
            if (i > 0) os << ", ";
            os << over->order_by[i].expr->ToString()
               << (over->order_by[i].ascending ? "" : " DESC");
          }
          space = true;
        }
        if (over->has_frame) {
          if (space) os << " ";
          os << (over->range_mode ? "RANGE BETWEEN " : "ROWS BETWEEN ")
             << FrameBoundToString(over->frame_lo)
             << " AND " << FrameBoundToString(over->frame_hi);
        }
        os << ")";
      }
      break;
    }
    case AstExprKind::kIn: {
      os << children[0]->ToString() << (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) os << ", ";
        os << children[i]->ToString();
      }
      os << ")";
      break;
    }
    case AstExprKind::kBetween:
      os << children[0]->ToString() << (negated ? " NOT" : "") << " BETWEEN "
         << children[1]->ToString() << " AND " << children[2]->ToString();
      break;
    case AstExprKind::kIsNull:
      os << children[0]->ToString() << " IS " << (negated ? "NOT " : "")
         << "NULL";
      break;
  }
  return os.str();
}

std::string TableRef::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kTable:
      os << table_name;
      if (!alias.empty()) os << " " << alias;
      break;
    case Kind::kSubquery:
      os << "(" << subquery->ToString() << ")";
      if (!alias.empty()) os << " " << alias;
      break;
    case Kind::kJoin: {
      os << left->ToString();
      switch (join_kind) {
        case JoinKind::kInner: os << " JOIN "; break;
        case JoinKind::kLeftOuter: os << " LEFT OUTER JOIN "; break;
        case JoinKind::kCross: os << ", "; break;
      }
      os << right->ToString();
      if (on != nullptr) os << " ON " << on->ToString();
      break;
    }
  }
  return os.str();
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) os << ", ";
    const SelectItem& item = select_list[i];
    if (item.is_star) {
      if (!item.star_qualifier.empty()) os << item.star_qualifier << ".";
      os << "*";
    } else {
      os << item.expr->ToString();
      if (!item.alias.empty()) os << " AS " << item.alias;
    }
  }
  if (from != nullptr) os << " FROM " << from->ToString();
  if (where != nullptr) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (having != nullptr) os << " HAVING " << having->ToString();
  if (union_all_next != nullptr) {
    os << " UNION ALL " << union_all_next->ToString();
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].expr->ToString() << (order_by[i].ascending ? "" : " DESC");
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

}  // namespace rfv
