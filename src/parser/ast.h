#ifndef RFVIEW_PARSER_AST_H_
#define RFVIEW_PARSER_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfv {

// ---------------------------------------------------------------------------
// Unbound expression AST (parser output). Column references are by name;
// the binder (plan/binder.*) resolves them against scopes and lowers to
// the bound expression tree in expr/expr.h.
// ---------------------------------------------------------------------------

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

enum class AstExprKind {
  kLiteral,      ///< int/double/string/NULL constant
  kColumn,       ///< [qualifier.]name
  kUnary,        ///< NOT e, -e
  kBinary,       ///< e op e  (arithmetic, comparison, AND, OR)
  kCase,         ///< searched CASE
  kFunctionCall, ///< name(args) — scalar or aggregate, maybe with OVER()
  kIn,           ///< e [NOT] IN (list)
  kBetween,      ///< e [NOT] BETWEEN lo AND hi
  kIsNull,       ///< e IS [NOT] NULL
  kStar,         ///< * inside COUNT(*)
};

enum class AstUnaryOp { kNeg, kNot };

enum class AstBinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// One endpoint of a ROWS frame.
struct FrameBound {
  enum class Kind {
    kUnboundedPreceding,
    kPreceding,        ///< `offset` rows preceding
    kCurrentRow,
    kFollowing,        ///< `offset` rows following
    kUnboundedFollowing,
  };
  Kind kind = Kind::kCurrentRow;
  int64_t offset = 0;
};

struct OrderItemAst;

/// The OVER(...) clause of a reporting function: optional partition
/// clause, optional order clause, optional window aggregation group
/// (paper Fig. 1). Absent frame with ORDER BY defaults to
/// RANGE-equivalent "UNBOUNDED PRECEDING .. CURRENT ROW" which this
/// engine treats as ROWS (positions are unique in all paper workloads).
struct WindowSpecAst {
  std::vector<AstExprPtr> partition_by;
  std::vector<OrderItemAst> order_by;
  bool has_frame = false;
  bool range_mode = false;  ///< RANGE (value distances) instead of ROWS
  FrameBound frame_lo;
  FrameBound frame_hi;
};

struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumn
  std::string qualifier;
  std::string name;

  // kUnary / kBinary
  AstUnaryOp unary_op = AstUnaryOp::kNeg;
  AstBinaryOp binary_op = AstBinaryOp::kAdd;

  // kFunctionCall
  std::string function_name;          ///< uppercased by the parser
  std::unique_ptr<WindowSpecAst> over;  ///< non-null ⇒ reporting function

  // kIn / kBetween / kIsNull
  bool negated = false;

  // kCase
  bool has_else = false;

  /// Children; layout matches expr/expr.h (kCase: when/then pairs then
  /// optional else; kIn: needle then candidates; kBetween: subject, lo,
  /// hi; kFunctionCall: arguments).
  std::vector<AstExprPtr> children;

  /// SQL-ish rendering (used in error messages and tests).
  std::string ToString() const;
};

/// ORDER BY item.
struct OrderItemAst {
  AstExprPtr expr;
  bool ascending = true;
};

// ---------------------------------------------------------------------------
// Table references and query structure
// ---------------------------------------------------------------------------

struct SelectStmt;

/// FROM-clause item: base table, derived table (subquery), or join.
struct TableRef {
  enum class Kind { kTable, kSubquery, kJoin };
  enum class JoinKind { kInner, kLeftOuter, kCross };

  Kind kind = Kind::kTable;

  // kTable
  std::string table_name;
  // kTable / kSubquery
  std::string alias;

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kJoin
  JoinKind join_kind = JoinKind::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  AstExprPtr on;  ///< null for CROSS (comma) joins

  std::string ToString() const;
};

/// One SELECT-list item: expression with optional alias, or `*` /
/// `alias.*`.
struct SelectItem {
  bool is_star = false;
  std::string star_qualifier;  ///< "s1" in s1.*; empty for bare *
  AstExprPtr expr;
  std::string alias;
};

/// A SELECT statement. UNION ALL chains hang off `union_all_next`
/// (left-deep); ORDER BY / LIMIT of the *head* statement apply to the
/// whole chain, matching the common SQL interpretation.
struct SelectStmt {
  bool distinct = false;  ///< SELECT DISTINCT
  std::vector<SelectItem> select_list;
  std::unique_ptr<TableRef> from;  ///< null for FROM-less SELECT
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderItemAst> order_by;
  int64_t limit = -1;  ///< -1 = no limit
  std::unique_ptr<SelectStmt> union_all_next;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// DDL / DML statements
// ---------------------------------------------------------------------------

struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  bool primary_key = false;  ///< creates an ordered index on the column
};

struct CreateTableStmt {
  std::string table_name;
  std::vector<ColumnSpec> columns;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table_name;
  std::string column_name;
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;          ///< empty = positional
  std::vector<std::vector<AstExprPtr>> rows; ///< constant expressions
};

struct UpdateStmt {
  std::string table_name;
  std::vector<std::pair<std::string, AstExprPtr>> assignments;
  AstExprPtr where;
};

struct DeleteStmt {
  std::string table_name;
  AstExprPtr where;
};

/// CREATE [MATERIALIZED] VIEW name AS SELECT ... — materialized views are
/// the paper's subject; plain views are rejected at execution time.
struct CreateViewStmt {
  std::string view_name;
  bool materialized = false;
  std::unique_ptr<SelectStmt> query;
};

struct DropTableStmt {
  std::string table_name;
};

/// ANALYZE [table] — recompute statistics (stats/table_stats.h) for one
/// table / view content table, or for every table when no name is given.
struct AnalyzeStmt {
  std::string table_name;  ///< empty = all tables
};

/// Top-level statement (tagged union of owned alternatives).
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kInsert,
    kUpdate,
    kDelete,
    kCreateView,
    kDropTable,
    kAnalyze,  ///< ANALYZE [table] — statistics recomputation
    kExplain,  ///< EXPLAIN [ANALYZE] <stmt> — `explained_kind` tags which
               ///< of the owned alternatives holds the target statement
  };
  Kind kind = Kind::kSelect;
  /// For kExplain: the kind of the explained statement (kSelect,
  /// kInsert, kUpdate or kDelete), whose fields are filled as usual.
  Kind explained_kind = Kind::kSelect;
  /// For kExplain: EXPLAIN ANALYZE — execute the statement and annotate
  /// the rendered plan with measured per-operator metrics.
  bool explain_analyze = false;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<AnalyzeStmt> analyze;
};

}  // namespace rfv

#endif  // RFVIEW_PARSER_AST_H_
