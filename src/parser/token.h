#ifndef RFVIEW_PARSER_TOKEN_H_
#define RFVIEW_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace rfv {

/// Lexical token categories. SQL keywords are lexed as kIdentifier and
/// matched case-insensitively by the parser; this keeps the keyword set
/// open-ended (identifiers may equal non-reserved keywords).
enum class TokenType {
  kEnd,
  kIdentifier,     ///< bare or keyword
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  ///< 'text' with '' escaping
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        ///< =
  kNe,        ///< <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        ///< raw text (identifier/keyword/string body)
  int64_t int_value = 0;   ///< kIntLiteral
  double double_value = 0; ///< kDoubleLiteral
  size_t offset = 0;       ///< byte offset in the SQL text, for errors
  size_t line = 1;
  size_t column = 1;
};

}  // namespace rfv

#endif  // RFVIEW_PARSER_TOKEN_H_
