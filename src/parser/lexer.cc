#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace rfv {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1;
  size_t line_start = 0;
  const size_t n = sql.size();

  const auto make_error = [&](const std::string& what) {
    return Status::ParseError(what + " at line " + std::to_string(line) +
                              ", column " + std::to_string(i - line_start + 1));
  };
  const auto push = [&](TokenType type, size_t start, std::string text = "") {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.offset = start;
    t.line = line;
    t.column = start - line_start + 1;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = sql[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      push(TokenType::kIdentifier, start, sql.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        // Only a fraction if followed by a digit; `1.` is also accepted.
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
        }
      }
      const std::string text = sql.substr(i, j - i);
      Token t;
      t.type = is_double ? TokenType::kDoubleLiteral : TokenType::kIntLiteral;
      t.text = text;
      t.offset = start;
      t.line = line;
      t.column = start - line_start + 1;
      if (is_double) {
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string body;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            body.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        body.push_back(sql[j]);
        ++j;
      }
      if (!closed) return make_error("unterminated string literal");
      push(TokenType::kStringLiteral, start, std::move(body));
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(TokenType::kLParen, start); ++i; continue;
      case ')': push(TokenType::kRParen, start); ++i; continue;
      case ',': push(TokenType::kComma, start); ++i; continue;
      case '.': push(TokenType::kDot, start); ++i; continue;
      case ';': push(TokenType::kSemicolon, start); ++i; continue;
      case '*': push(TokenType::kStar, start); ++i; continue;
      case '+': push(TokenType::kPlus, start); ++i; continue;
      case '-': push(TokenType::kMinus, start); ++i; continue;
      case '/': push(TokenType::kSlash, start); ++i; continue;
      case '%': push(TokenType::kPercent, start); ++i; continue;
      case '=': push(TokenType::kEq, start); ++i; continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
          continue;
        }
        return make_error("unexpected character '!'");
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        continue;
      default:
        return make_error(std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  end.line = line;
  end.column = n - line_start + 1;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace rfv
