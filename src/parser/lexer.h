#ifndef RFVIEW_PARSER_LEXER_H_
#define RFVIEW_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace rfv {

/// Tokenizes SQL text. Supports: identifiers (letters, digits, `_`,
/// starting with a letter or `_`), integer and floating literals, string
/// literals in single quotes with `''` escaping, `--` line comments, and
/// the operator/punctuation set of token.h. Errors: kParseError with
/// line/column info.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace rfv

#endif  // RFVIEW_PARSER_LEXER_H_
