#ifndef RFVIEW_PARSER_PARSER_H_
#define RFVIEW_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace rfv {

/// Recursive-descent parser for the SQL subset used by the paper's
/// workloads and operator patterns:
///
///   SELECT <exprs | * | alias.*> FROM <tables, joins, subqueries>
///     [WHERE] [GROUP BY] [HAVING] [UNION ALL ...] [ORDER BY] [LIMIT]
///   with reporting functions `agg(expr) OVER (PARTITION BY ...
///     ORDER BY ... ROWS {BETWEEN <bound> AND <bound> | <bound>})`
///   CREATE TABLE t (col TYPE [PRIMARY KEY], ...)
///   CREATE INDEX i ON t (col)
///   CREATE [MATERIALIZED] VIEW v AS SELECT ...
///   INSERT INTO t [(cols)] VALUES (...), ...
///   UPDATE t SET col = expr, ... [WHERE ...]
///   DELETE FROM t [WHERE ...]
///   DROP TABLE t
///
/// Identifiers and keywords are case-insensitive. Errors: kParseError
/// with line/column context.
class Parser {
 public:
  /// Parses exactly one statement (a trailing `;` is allowed).
  static Result<Statement> ParseStatement(const std::string& sql);

  /// Parses a `;`-separated script.
  static Result<std::vector<Statement>> ParseScript(const std::string& sql);

  /// Parses a standalone scalar expression (test helper).
  static Result<AstExprPtr> ParseExpression(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Accept(TokenType type);
  Status Expect(TokenType type, const std::string& what);
  /// Keyword helpers operate on kIdentifier tokens, case-insensitively.
  bool CheckKeyword(const std::string& kw, size_t ahead = 0) const;
  bool AcceptKeyword(const std::string& kw);
  Status ExpectKeyword(const std::string& kw);
  Status ErrorHere(const std::string& what) const;
  /// True when the current identifier is reserved (cannot be an alias).
  bool AtReservedKeyword() const;

  // --- statements ---
  Result<Statement> ParseSingleStatement();
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<SelectStmt>> ParseSelectCore();
  Result<Statement> ParseCreate();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseDrop();

  // --- clauses ---
  Result<std::unique_ptr<TableRef>> ParseFromClause();
  Result<std::unique_ptr<TableRef>> ParseJoinChain();
  Result<std::unique_ptr<TableRef>> ParseTablePrimary();
  /// Table name, optionally schema-qualified: `name` or `schema.name`
  /// (rendered dot-joined, e.g. "rfv_system.queries").
  Result<std::string> ParseTableName();
  Result<std::vector<OrderItemAst>> ParseOrderByList();
  Result<DataType> ParseTypeName();

  // --- expressions (precedence climbing) ---
  Result<AstExprPtr> ParseExpr();
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParsePredicate();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParseUnary();
  Result<AstExprPtr> ParsePrimary();
  Result<std::unique_ptr<WindowSpecAst>> ParseOverClause();
  Result<FrameBound> ParseFrameBound();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_PARSER_PARSER_H_
