#include "parser/parser.h"

#include <array>

#include "common/logging.h"
#include "common/str_util.h"
#include "parser/lexer.h"

namespace rfv {

namespace {

/// Identifiers that may not be used as implicit (AS-less) aliases or
/// column names in positions where we would otherwise greedily consume
/// them.
constexpr std::array<const char*, 28> kReservedKeywords = {
    "select", "from",  "where",  "group",  "having", "order",   "limit",
    "union",  "join",  "left",   "right",  "inner",  "outer",   "cross",
    "on",     "and",   "or",     "not",    "as",     "case",    "when",
    "then",   "else",  "end",    "between", "in",    "is",      "values",
};

bool IsReserved(const std::string& ident) {
  const std::string lower = ToLower(ident);
  for (const char* kw : kReservedKeywords) {
    if (lower == kw) return true;
  }
  return false;
}

AstExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

AstExprPtr MakeBinary(AstBinaryOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

}  // namespace

// --- public entry points ---------------------------------------------------

Result<Statement> Parser::ParseStatement(const std::string& sql) {
  std::vector<Token> tokens;
  RFV_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  Statement stmt;
  RFV_ASSIGN_OR_RETURN(stmt, parser.ParseSingleStatement());
  parser.Accept(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEnd)) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<std::vector<Statement>> Parser::ParseScript(const std::string& sql) {
  std::vector<Token> tokens;
  RFV_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  std::vector<Statement> statements;
  while (!parser.Check(TokenType::kEnd)) {
    if (parser.Accept(TokenType::kSemicolon)) continue;
    Statement stmt;
    RFV_ASSIGN_OR_RETURN(stmt, parser.ParseSingleStatement());
    statements.push_back(std::move(stmt));
    if (!parser.Check(TokenType::kEnd)) {
      RFV_RETURN_IF_ERROR(
          parser.Expect(TokenType::kSemicolon, "';' between statements"));
    }
  }
  return statements;
}

Result<AstExprPtr> Parser::ParseExpression(const std::string& sql) {
  std::vector<Token> tokens;
  RFV_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  AstExprPtr expr;
  RFV_ASSIGN_OR_RETURN(expr, parser.ParseExpr());
  if (!parser.Check(TokenType::kEnd)) {
    return parser.ErrorHere("unexpected trailing input after expression");
  }
  return expr;
}

// --- token helpers ----------------------------------------------------------

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

bool Parser::Accept(TokenType type) {
  if (Check(type)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const std::string& what) {
  if (!Check(type)) return ErrorHere("expected " + what);
  Advance();
  return Status::OK();
}

bool Parser::CheckKeyword(const std::string& kw, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
}

bool Parser::AcceptKeyword(const std::string& kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const std::string& kw) {
  if (!CheckKeyword(kw)) return ErrorHere("expected keyword " + ToUpper(kw));
  Advance();
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& what) const {
  const Token& t = Peek();
  std::string context = t.type == TokenType::kEnd ? "<end of input>" : t.text;
  if (context.empty()) context = "<symbol>";
  return Status::ParseError(what + " near '" + context + "' at line " +
                            std::to_string(t.line) + ", column " +
                            std::to_string(t.column));
}

bool Parser::AtReservedKeyword() const {
  const Token& t = Peek();
  return t.type == TokenType::kIdentifier && IsReserved(t.text);
}

// --- statements -------------------------------------------------------------

Result<Statement> Parser::ParseSingleStatement() {
  if (CheckKeyword("select")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kSelect;
    RFV_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }
  if (CheckKeyword("create")) return ParseCreate();
  if (CheckKeyword("insert")) return ParseInsert();
  if (CheckKeyword("update")) return ParseUpdate();
  if (CheckKeyword("delete")) return ParseDelete();
  if (CheckKeyword("drop")) return ParseDrop();
  if (AcceptKeyword("analyze")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kAnalyze;
    stmt.analyze = std::make_unique<AnalyzeStmt>();
    if (Peek().type == TokenType::kIdentifier && !AtReservedKeyword()) {
      stmt.analyze->table_name = Advance().text;
    }
    return stmt;
  }
  if (AcceptKeyword("explain")) {
    const bool analyze = AcceptKeyword("analyze");
    if (!CheckKeyword("select") && !CheckKeyword("insert") &&
        !CheckKeyword("update") && !CheckKeyword("delete")) {
      return ErrorHere(
          "EXPLAIN supports SELECT, INSERT, UPDATE and DELETE statements");
    }
    Statement stmt;
    RFV_ASSIGN_OR_RETURN(stmt, ParseSingleStatement());
    stmt.explained_kind = stmt.kind;
    stmt.kind = Statement::Kind::kExplain;
    stmt.explain_analyze = analyze;
    return stmt;
  }
  return ErrorHere("expected a statement");
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  std::unique_ptr<SelectStmt> head;
  RFV_ASSIGN_OR_RETURN(head, ParseSelectCore());
  SelectStmt* tail = head.get();
  while (CheckKeyword("union")) {
    Advance();
    RFV_RETURN_IF_ERROR(ExpectKeyword("all"));
    std::unique_ptr<SelectStmt> next;
    RFV_ASSIGN_OR_RETURN(next, ParseSelectCore());
    tail->union_all_next = std::move(next);
    tail = tail->union_all_next.get();
  }
  if (AcceptKeyword("order")) {
    RFV_RETURN_IF_ERROR(ExpectKeyword("by"));
    RFV_ASSIGN_OR_RETURN(head->order_by, ParseOrderByList());
  }
  if (AcceptKeyword("limit")) {
    if (!Check(TokenType::kIntLiteral)) {
      return ErrorHere("expected integer after LIMIT");
    }
    head->limit = Advance().int_value;
  }
  return head;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectCore() {
  RFV_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto stmt = std::make_unique<SelectStmt>();
  if (AcceptKeyword("distinct")) {
    stmt->distinct = true;
  } else {
    AcceptKeyword("all");
  }

  // Select list.
  do {
    SelectItem item;
    if (Accept(TokenType::kStar)) {
      item.is_star = true;
    } else if (Peek().type == TokenType::kIdentifier &&
               Peek(1).type == TokenType::kDot &&
               Peek(2).type == TokenType::kStar) {
      item.is_star = true;
      item.star_qualifier = Advance().text;
      Advance();  // dot
      Advance();  // star
    } else {
      RFV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("as")) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier &&
                 !AtReservedKeyword()) {
        item.alias = Advance().text;
      }
    }
    stmt->select_list.push_back(std::move(item));
  } while (Accept(TokenType::kComma));

  if (AcceptKeyword("from")) {
    RFV_ASSIGN_OR_RETURN(stmt->from, ParseFromClause());
  }
  if (AcceptKeyword("where")) {
    RFV_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (CheckKeyword("group")) {
    Advance();
    RFV_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      AstExprPtr e;
      RFV_ASSIGN_OR_RETURN(e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Accept(TokenType::kComma));
  }
  if (AcceptKeyword("having")) {
    RFV_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  return stmt;
}

Result<DataType> Parser::ParseTypeName() {
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected a type name");
  }
  const std::string name = ToLower(Advance().text);
  DataType type;
  if (name == "int" || name == "integer" || name == "bigint" ||
      name == "smallint" || name == "date") {
    type = DataType::kInt64;
  } else if (name == "double" || name == "float" || name == "real" ||
             name == "decimal" || name == "numeric") {
    type = DataType::kDouble;
  } else if (name == "varchar" || name == "char" || name == "text" ||
             name == "string") {
    type = DataType::kString;
  } else if (name == "boolean" || name == "bool") {
    type = DataType::kBool;
  } else {
    return ErrorHere("unknown type name '" + name + "'");
  }
  // Optional length/precision: VARCHAR(30), DECIMAL(10,2).
  if (Accept(TokenType::kLParen)) {
    while (!Check(TokenType::kRParen) && !Check(TokenType::kEnd)) Advance();
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  }
  return type;
}

Result<Statement> Parser::ParseCreate() {
  RFV_RETURN_IF_ERROR(ExpectKeyword("create"));
  if (AcceptKeyword("table")) {
    auto create = std::make_unique<CreateTableStmt>();
    // Qualified names parse (so the catalog can reject writes into a
    // virtual schema with a proper error) even though user schemas
    // don't exist.
    RFV_ASSIGN_OR_RETURN(create->table_name, ParseTableName());
    RFV_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      ColumnSpec col;
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name");
      }
      col.name = Advance().text;
      RFV_ASSIGN_OR_RETURN(col.type, ParseTypeName());
      if (AcceptKeyword("primary")) {
        RFV_RETURN_IF_ERROR(ExpectKeyword("key"));
        col.primary_key = true;
      }
      if (AcceptKeyword("not")) {
        RFV_RETURN_IF_ERROR(ExpectKeyword("null"));  // accepted, not enforced
      }
      create->columns.push_back(std::move(col));
    } while (Accept(TokenType::kComma));
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::move(create);
    return stmt;
  }
  if (AcceptKeyword("index")) {
    auto create = std::make_unique<CreateIndexStmt>();
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected index name");
    }
    create->index_name = Advance().text;
    RFV_RETURN_IF_ERROR(ExpectKeyword("on"));
    RFV_ASSIGN_OR_RETURN(create->table_name, ParseTableName());
    RFV_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name");
    }
    create->column_name = Advance().text;
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    stmt.create_index = std::move(create);
    return stmt;
  }
  const bool materialized = AcceptKeyword("materialized");
  if (AcceptKeyword("view")) {
    auto create = std::make_unique<CreateViewStmt>();
    create->materialized = materialized;
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected view name");
    }
    create->view_name = Advance().text;
    RFV_RETURN_IF_ERROR(ExpectKeyword("as"));
    RFV_ASSIGN_OR_RETURN(create->query, ParseSelect());
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateView;
    stmt.create_view = std::move(create);
    return stmt;
  }
  return ErrorHere("expected TABLE, INDEX or [MATERIALIZED] VIEW");
}

Result<std::string> Parser::ParseTableName() {
  if (Peek().type != TokenType::kIdentifier || AtReservedKeyword()) {
    return ErrorHere("expected table name");
  }
  std::string name = Advance().text;
  if (Accept(TokenType::kDot)) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected table name after schema qualifier");
    }
    name += "." + Advance().text;
  }
  return name;
}

Result<Statement> Parser::ParseInsert() {
  RFV_RETURN_IF_ERROR(ExpectKeyword("insert"));
  RFV_RETURN_IF_ERROR(ExpectKeyword("into"));
  auto insert = std::make_unique<InsertStmt>();
  RFV_ASSIGN_OR_RETURN(insert->table_name, ParseTableName());
  if (Accept(TokenType::kLParen)) {
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name");
      }
      insert->columns.push_back(Advance().text);
    } while (Accept(TokenType::kComma));
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  }
  RFV_RETURN_IF_ERROR(ExpectKeyword("values"));
  do {
    RFV_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    std::vector<AstExprPtr> row;
    do {
      AstExprPtr e;
      RFV_ASSIGN_OR_RETURN(e, ParseExpr());
      row.push_back(std::move(e));
    } while (Accept(TokenType::kComma));
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    insert->rows.push_back(std::move(row));
  } while (Accept(TokenType::kComma));
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  stmt.insert = std::move(insert);
  return stmt;
}

Result<Statement> Parser::ParseUpdate() {
  RFV_RETURN_IF_ERROR(ExpectKeyword("update"));
  auto update = std::make_unique<UpdateStmt>();
  RFV_ASSIGN_OR_RETURN(update->table_name, ParseTableName());
  RFV_RETURN_IF_ERROR(ExpectKeyword("set"));
  do {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name");
    }
    std::string column = Advance().text;
    RFV_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    AstExprPtr value;
    RFV_ASSIGN_OR_RETURN(value, ParseExpr());
    update->assignments.emplace_back(std::move(column), std::move(value));
  } while (Accept(TokenType::kComma));
  if (AcceptKeyword("where")) {
    RFV_ASSIGN_OR_RETURN(update->where, ParseExpr());
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kUpdate;
  stmt.update = std::move(update);
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  RFV_RETURN_IF_ERROR(ExpectKeyword("delete"));
  RFV_RETURN_IF_ERROR(ExpectKeyword("from"));
  auto del = std::make_unique<DeleteStmt>();
  RFV_ASSIGN_OR_RETURN(del->table_name, ParseTableName());
  if (AcceptKeyword("where")) {
    RFV_ASSIGN_OR_RETURN(del->where, ParseExpr());
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  stmt.del = std::move(del);
  return stmt;
}

Result<Statement> Parser::ParseDrop() {
  RFV_RETURN_IF_ERROR(ExpectKeyword("drop"));
  RFV_RETURN_IF_ERROR(ExpectKeyword("table"));
  auto drop = std::make_unique<DropTableStmt>();
  RFV_ASSIGN_OR_RETURN(drop->table_name, ParseTableName());
  Statement stmt;
  stmt.kind = Statement::Kind::kDropTable;
  stmt.drop_table = std::move(drop);
  return stmt;
}

// --- FROM clause ------------------------------------------------------------

Result<std::unique_ptr<TableRef>> Parser::ParseFromClause() {
  std::unique_ptr<TableRef> left;
  RFV_ASSIGN_OR_RETURN(left, ParseJoinChain());
  while (Accept(TokenType::kComma)) {
    std::unique_ptr<TableRef> right;
    RFV_ASSIGN_OR_RETURN(right, ParseJoinChain());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_kind = TableRef::JoinKind::kCross;
    join->left = std::move(left);
    join->right = std::move(right);
    left = std::move(join);
  }
  return left;
}

Result<std::unique_ptr<TableRef>> Parser::ParseJoinChain() {
  std::unique_ptr<TableRef> left;
  RFV_ASSIGN_OR_RETURN(left, ParseTablePrimary());
  while (true) {
    TableRef::JoinKind join_kind;
    if (CheckKeyword("join") || CheckKeyword("inner")) {
      AcceptKeyword("inner");
      RFV_RETURN_IF_ERROR(ExpectKeyword("join"));
      join_kind = TableRef::JoinKind::kInner;
    } else if (CheckKeyword("left")) {
      Advance();
      AcceptKeyword("outer");
      RFV_RETURN_IF_ERROR(ExpectKeyword("join"));
      join_kind = TableRef::JoinKind::kLeftOuter;
    } else if (CheckKeyword("cross")) {
      Advance();
      RFV_RETURN_IF_ERROR(ExpectKeyword("join"));
      join_kind = TableRef::JoinKind::kCross;
    } else {
      break;
    }
    std::unique_ptr<TableRef> right;
    RFV_ASSIGN_OR_RETURN(right, ParseTablePrimary());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_kind = join_kind;
    join->left = std::move(left);
    join->right = std::move(right);
    if (join_kind != TableRef::JoinKind::kCross) {
      RFV_RETURN_IF_ERROR(ExpectKeyword("on"));
      RFV_ASSIGN_OR_RETURN(join->on, ParseExpr());
    }
    left = std::move(join);
  }
  return left;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTablePrimary() {
  auto ref = std::make_unique<TableRef>();
  if (Accept(TokenType::kLParen)) {
    ref->kind = TableRef::Kind::kSubquery;
    RFV_ASSIGN_OR_RETURN(ref->subquery, ParseSelect());
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  } else {
    if (Peek().type != TokenType::kIdentifier || AtReservedKeyword()) {
      return ErrorHere("expected table name or subquery");
    }
    ref->kind = TableRef::Kind::kTable;
    RFV_ASSIGN_OR_RETURN(ref->table_name, ParseTableName());
  }
  if (AcceptKeyword("as")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    ref->alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier && !AtReservedKeyword()) {
    ref->alias = Advance().text;
  }
  if (ref->kind == TableRef::Kind::kSubquery && ref->alias.empty()) {
    return ErrorHere("derived table requires an alias");
  }
  return ref;
}

Result<std::vector<OrderItemAst>> Parser::ParseOrderByList() {
  std::vector<OrderItemAst> items;
  do {
    OrderItemAst item;
    RFV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (AcceptKeyword("desc")) {
      item.ascending = false;
    } else {
      AcceptKeyword("asc");
    }
    items.push_back(std::move(item));
  } while (Accept(TokenType::kComma));
  return items;
}

// --- expressions ------------------------------------------------------------

Result<AstExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<AstExprPtr> Parser::ParseOr() {
  AstExprPtr left;
  RFV_ASSIGN_OR_RETURN(left, ParseAnd());
  while (AcceptKeyword("or")) {
    AstExprPtr right;
    RFV_ASSIGN_OR_RETURN(right, ParseAnd());
    left = MakeBinary(AstBinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAnd() {
  AstExprPtr left;
  RFV_ASSIGN_OR_RETURN(left, ParseNot());
  while (AcceptKeyword("and")) {
    AstExprPtr right;
    RFV_ASSIGN_OR_RETURN(right, ParseNot());
    left = MakeBinary(AstBinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (AcceptKeyword("not")) {
    AstExprPtr operand;
    RFV_ASSIGN_OR_RETURN(operand, ParseNot());
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kUnary;
    e->unary_op = AstUnaryOp::kNot;
    e->children.push_back(std::move(operand));
    return e;
  }
  return ParsePredicate();
}

Result<AstExprPtr> Parser::ParsePredicate() {
  AstExprPtr left;
  RFV_ASSIGN_OR_RETURN(left, ParseAdditive());

  // IS [NOT] NULL
  if (CheckKeyword("is")) {
    Advance();
    const bool negated = AcceptKeyword("not");
    RFV_RETURN_IF_ERROR(ExpectKeyword("null"));
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kIsNull;
    e->negated = negated;
    e->children.push_back(std::move(left));
    return e;
  }

  bool negated = false;
  if (CheckKeyword("not") &&
      (CheckKeyword("between", 1) || CheckKeyword("in", 1))) {
    Advance();
    negated = true;
  }
  if (AcceptKeyword("between")) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kBetween;
    e->negated = negated;
    e->children.push_back(std::move(left));
    AstExprPtr lo;
    RFV_ASSIGN_OR_RETURN(lo, ParseAdditive());
    RFV_RETURN_IF_ERROR(ExpectKeyword("and"));
    AstExprPtr hi;
    RFV_ASSIGN_OR_RETURN(hi, ParseAdditive());
    e->children.push_back(std::move(lo));
    e->children.push_back(std::move(hi));
    return e;
  }
  if (AcceptKeyword("in")) {
    RFV_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after IN"));
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kIn;
    e->negated = negated;
    e->children.push_back(std::move(left));
    do {
      AstExprPtr candidate;
      RFV_ASSIGN_OR_RETURN(candidate, ParseExpr());
      e->children.push_back(std::move(candidate));
    } while (Accept(TokenType::kComma));
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return e;
  }
  if (negated) return ErrorHere("expected BETWEEN or IN after NOT");

  AstBinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = AstBinaryOp::kEq; break;
    case TokenType::kNe: op = AstBinaryOp::kNe; break;
    case TokenType::kLt: op = AstBinaryOp::kLt; break;
    case TokenType::kLe: op = AstBinaryOp::kLe; break;
    case TokenType::kGt: op = AstBinaryOp::kGt; break;
    case TokenType::kGe: op = AstBinaryOp::kGe; break;
    default: return left;
  }
  Advance();
  AstExprPtr right;
  RFV_ASSIGN_OR_RETURN(right, ParseAdditive());
  return MakeBinary(op, std::move(left), std::move(right));
}

Result<AstExprPtr> Parser::ParseAdditive() {
  AstExprPtr left;
  RFV_ASSIGN_OR_RETURN(left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    const AstBinaryOp op = Check(TokenType::kPlus) ? AstBinaryOp::kAdd
                                                   : AstBinaryOp::kSub;
    Advance();
    AstExprPtr right;
    RFV_ASSIGN_OR_RETURN(right, ParseMultiplicative());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  AstExprPtr left;
  RFV_ASSIGN_OR_RETURN(left, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
         Check(TokenType::kPercent)) {
    AstBinaryOp op;
    if (Check(TokenType::kStar)) {
      op = AstBinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = AstBinaryOp::kDiv;
    } else {
      op = AstBinaryOp::kMod;
    }
    Advance();
    AstExprPtr right;
    RFV_ASSIGN_OR_RETURN(right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<AstExprPtr> Parser::ParseUnary() {
  if (Accept(TokenType::kMinus)) {
    AstExprPtr operand;
    RFV_ASSIGN_OR_RETURN(operand, ParseUnary());
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kUnary;
    e->unary_op = AstUnaryOp::kNeg;
    e->children.push_back(std::move(operand));
    return e;
  }
  Accept(TokenType::kPlus);  // unary plus is a no-op
  return ParsePrimary();
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral:
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    case TokenType::kDoubleLiteral:
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    case TokenType::kStringLiteral:
      Advance();
      return MakeLiteral(Value::String(t.text));
    case TokenType::kLParen: {
      Advance();
      AstExprPtr inner;
      RFV_ASSIGN_OR_RETURN(inner, ParseExpr());
      RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kIdentifier:
      break;
    default:
      return ErrorHere("expected an expression");
  }

  // NULL / TRUE / FALSE literals.
  if (AcceptKeyword("null")) return MakeLiteral(Value::Null());
  if (AcceptKeyword("true")) return MakeLiteral(Value::Bool(true));
  if (AcceptKeyword("false")) return MakeLiteral(Value::Bool(false));

  // Searched CASE.
  if (AcceptKeyword("case")) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kCase;
    if (!CheckKeyword("when")) {
      return ErrorHere("only searched CASE (CASE WHEN ...) is supported");
    }
    while (AcceptKeyword("when")) {
      AstExprPtr cond;
      RFV_ASSIGN_OR_RETURN(cond, ParseExpr());
      RFV_RETURN_IF_ERROR(ExpectKeyword("then"));
      AstExprPtr then;
      RFV_ASSIGN_OR_RETURN(then, ParseExpr());
      e->children.push_back(std::move(cond));
      e->children.push_back(std::move(then));
    }
    if (AcceptKeyword("else")) {
      AstExprPtr els;
      RFV_ASSIGN_OR_RETURN(els, ParseExpr());
      e->children.push_back(std::move(els));
      e->has_else = true;
    }
    RFV_RETURN_IF_ERROR(ExpectKeyword("end"));
    return e;
  }

  // Function call?
  if (Peek(1).type == TokenType::kLParen) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kFunctionCall;
    e->function_name = ToUpper(Advance().text);
    Advance();  // (
    if (!Check(TokenType::kRParen)) {
      do {
        if (Check(TokenType::kStar)) {  // COUNT(*)
          Advance();
          auto star = std::make_unique<AstExpr>();
          star->kind = AstExprKind::kStar;
          e->children.push_back(std::move(star));
        } else {
          AstExprPtr arg;
          RFV_ASSIGN_OR_RETURN(arg, ParseExpr());
          e->children.push_back(std::move(arg));
        }
      } while (Accept(TokenType::kComma));
    }
    RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (CheckKeyword("over")) {
      Advance();
      RFV_ASSIGN_OR_RETURN(e->over, ParseOverClause());
    }
    return e;
  }

  // Column reference: ident or ident.ident.
  if (AtReservedKeyword()) return ErrorHere("expected an expression");
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kColumn;
  e->name = Advance().text;
  if (Accept(TokenType::kDot)) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name after '.'");
    }
    e->qualifier = std::move(e->name);
    e->name = Advance().text;
  }
  return e;
}

Result<std::unique_ptr<WindowSpecAst>> Parser::ParseOverClause() {
  RFV_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after OVER"));
  auto spec = std::make_unique<WindowSpecAst>();
  if (AcceptKeyword("partition")) {
    RFV_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      AstExprPtr e;
      RFV_ASSIGN_OR_RETURN(e, ParseExpr());
      spec->partition_by.push_back(std::move(e));
    } while (Accept(TokenType::kComma));
  }
  if (AcceptKeyword("order")) {
    RFV_RETURN_IF_ERROR(ExpectKeyword("by"));
    RFV_ASSIGN_OR_RETURN(spec->order_by, ParseOrderByList());
  }
  if (CheckKeyword("rows") || CheckKeyword("range")) {
    spec->range_mode = CheckKeyword("range");
    Advance();
    spec->has_frame = true;
    if (AcceptKeyword("between")) {
      RFV_ASSIGN_OR_RETURN(spec->frame_lo, ParseFrameBound());
      RFV_RETURN_IF_ERROR(ExpectKeyword("and"));
      RFV_ASSIGN_OR_RETURN(spec->frame_hi, ParseFrameBound());
    } else {
      // Single-bound shorthand: `ROWS <bound>` means bound .. CURRENT ROW.
      RFV_ASSIGN_OR_RETURN(spec->frame_lo, ParseFrameBound());
      spec->frame_hi.kind = FrameBound::Kind::kCurrentRow;
    }
  }
  RFV_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  return spec;
}

Result<FrameBound> Parser::ParseFrameBound() {
  FrameBound bound;
  if (AcceptKeyword("unbounded")) {
    if (AcceptKeyword("preceding")) {
      bound.kind = FrameBound::Kind::kUnboundedPreceding;
      return bound;
    }
    if (AcceptKeyword("following")) {
      bound.kind = FrameBound::Kind::kUnboundedFollowing;
      return bound;
    }
    return ErrorHere("expected PRECEDING or FOLLOWING after UNBOUNDED");
  }
  if (AcceptKeyword("current")) {
    RFV_RETURN_IF_ERROR(ExpectKeyword("row"));
    bound.kind = FrameBound::Kind::kCurrentRow;
    return bound;
  }
  if (Check(TokenType::kIntLiteral)) {
    bound.offset = Advance().int_value;
    if (AcceptKeyword("preceding")) {
      bound.kind = FrameBound::Kind::kPreceding;
      return bound;
    }
    if (AcceptKeyword("following")) {
      bound.kind = FrameBound::Kind::kFollowing;
      return bound;
    }
    return ErrorHere("expected PRECEDING or FOLLOWING after frame offset");
  }
  return ErrorHere("expected a window frame bound");
}

}  // namespace rfv
