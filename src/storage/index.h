#ifndef RFVIEW_STORAGE_INDEX_H_
#define RFVIEW_STORAGE_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfv {

class Table;

/// An ordered secondary index over one column of a table.
///
/// The index is a sorted array of (key, row id) entries with binary-search
/// point and range lookup — the classic "static B-tree" layout. It is what
/// gives the planner the "with primary key index" execution paths of the
/// paper's Table 1/2 experiments: an index nested-loop join probes this
/// structure in O(log n + matches) instead of scanning the whole table.
///
/// Maintenance contract: `Insert` keeps the index consistent for appended
/// rows; any in-place update or delete on the owning table marks the index
/// dirty and the next lookup rebuilds it (tables in this engine are
/// read-mostly; DML batches amortize the rebuild).
class OrderedIndex {
 public:
  /// `column` is the index key's position in the table schema.
  OrderedIndex(std::string name, size_t column)
      : name_(std::move(name)), column_(column) {}

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }

  /// Adds an entry for a newly appended row.
  void Insert(const Value& key, size_t row_id);

  /// Marks the index stale; next lookup triggers RebuildFrom.
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }

  /// Rebuilds all entries by scanning `table`.
  void RebuildFrom(const Table& table);

  /// Row ids whose key equals `key` (requires !dirty()).
  std::vector<size_t> Lookup(const Value& key) const;

  /// Row ids whose key lies in [lo, hi] (either bound may be omitted by
  /// passing NULL Values with `has_lo`/`has_hi` false). Requires !dirty().
  std::vector<size_t> LookupRange(const Value& lo, bool has_lo,
                                  const Value& hi, bool has_hi) const;

  size_t NumEntries() const { return entries_.size(); }

  /// Restores sortedness after unsorted inserts. Called by the owning
  /// table before handing the index to the executor.
  void EnsureSorted();

 private:
  struct Entry {
    Value key;
    size_t row_id;
  };

  std::string name_;
  size_t column_;
  bool dirty_ = false;
  bool sorted_ = true;
  std::vector<Entry> entries_;
};

}  // namespace rfv

#endif  // RFVIEW_STORAGE_INDEX_H_
