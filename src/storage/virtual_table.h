#ifndef RFVIEW_STORAGE_VIRTUAL_TABLE_H_
#define RFVIEW_STORAGE_VIRTUAL_TABLE_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"

namespace rfv {

/// Source of virtual (computed) tables served under a reserved schema
/// name, e.g. the `rfv_system` introspection catalog (db/system_views.h).
///
/// A provider is registered with the catalog once
/// (`Catalog::RegisterVirtualSchema`); afterwards a schema-qualified
/// name such as `rfv_system.queries` resolves through the ordinary
/// `Catalog::GetTable` path. The catalog materializes the provider's
/// rows into a cached content table at resolution time — which the
/// binder hits once per table reference, i.e. at scan-open from the
/// executor's perspective — so the scan pipeline (row, batch and
/// vector pull styles, filters, windows, joins) runs over a stable
/// snapshot and `mutation_epoch` never fires mid-query.
///
/// Virtual tables are read-only: DML, DROP and index DDL against them
/// are rejected by the database layer.
class VirtualTableProvider {
 public:
  virtual ~VirtualTableProvider() = default;

  /// Unqualified names of the tables this provider serves (sorted).
  virtual std::vector<std::string> VirtualTableNames() const = 0;

  /// Schema of one virtual table. Errors: kNotFound for unknown names.
  virtual Result<Schema> VirtualTableSchema(const std::string& table) const = 0;

  /// Computes the current rows of one virtual table. Called by the
  /// catalog on every resolution of the qualified name; rows must match
  /// VirtualTableSchema's column types (NULLs allowed anywhere).
  virtual Result<std::vector<Row>> MaterializeVirtualTable(
      const std::string& table) const = 0;
};

}  // namespace rfv

#endif  // RFVIEW_STORAGE_VIRTUAL_TABLE_H_
