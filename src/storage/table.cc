#include "storage/table.h"

#include <utility>

namespace rfv {

Status Table::ValidateAndCoerce(Row* row) const {
  if (row->size() != schema_.NumColumns()) {
    return Status::TypeError(
        "row arity " + std::to_string(row->size()) + " does not match table " +
        name_ + " with " + std::to_string(schema_.NumColumns()) + " columns");
  }
  for (size_t i = 0; i < row->size(); ++i) {
    Value& v = row->at(i);
    if (v.is_null()) continue;
    const DataType want = schema_.column(i).type;
    const DataType have = v.type();
    if (have == want) continue;
    if (want == DataType::kDouble && have == DataType::kInt64) {
      v = Value::Double(static_cast<double>(v.AsInt()));
      continue;
    }
    if (want == DataType::kInt64 && have == DataType::kDouble) {
      // Accept doubles that are exact integers (parser produces int
      // literals, but expressions may compute doubles).
      const double d = v.AsDouble();
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        v = Value::Int(as_int);
        continue;
      }
    }
    return Status::TypeError("column " + schema_.column(i).name +
                             " expects " + DataTypeName(want) + ", got " +
                             DataTypeName(have));
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  RFV_RETURN_IF_ERROR(ValidateAndCoerce(&row));
  ++mutation_epoch_;
  const size_t row_id = rows_.size();
  rows_.push_back(std::move(row));
  stats_.InsertRow(schema_, rows_.back());
  for (auto& index : indexes_) {
    if (!index->dirty()) {
      index->Insert(rows_.back()[index->column()], row_id);
    }
  }
  return Status::OK();
}

Status Table::InsertBatch(std::vector<Row> rows) {
  for (Row& row : rows) {
    RFV_RETURN_IF_ERROR(ValidateAndCoerce(&row));
  }
  ++mutation_epoch_;
  rows_.reserve(rows_.size() + rows.size());
  for (Row& row : rows) {
    rows_.push_back(std::move(row));
    stats_.InsertRow(schema_, rows_.back());
  }
  MarkIndexesDirty();
  return Status::OK();
}

Status Table::UpdateRow(size_t row_id, Row row) {
  if (row_id >= rows_.size()) {
    return Status::InvalidArgument("row id out of range");
  }
  RFV_RETURN_IF_ERROR(ValidateAndCoerce(&row));
  ++mutation_epoch_;
  stats_.ReplaceRow(schema_, rows_[row_id], row);
  rows_[row_id] = std::move(row);
  MarkIndexesDirty();
  return Status::OK();
}

Status Table::UpdateCell(size_t row_id, size_t column, Value value) {
  if (row_id >= rows_.size()) {
    return Status::InvalidArgument("row id out of range");
  }
  if (column >= schema_.NumColumns()) {
    return Status::InvalidArgument("column out of range");
  }
  Row updated = rows_[row_id];
  updated[column] = std::move(value);
  RFV_RETURN_IF_ERROR(ValidateAndCoerce(&updated));
  ++mutation_epoch_;
  stats_.ReplaceRow(schema_, rows_[row_id], updated);
  rows_[row_id] = std::move(updated);
  // Only indexes keyed on the changed column go stale — the paper's
  // incremental view maintenance updates `val` cells through `pos`
  // indexes, which must stay warm.
  for (auto& index : indexes_) {
    if (index->column() == column) index->MarkDirty();
  }
  return Status::OK();
}

Status Table::DeleteRow(size_t row_id) {
  if (row_id >= rows_.size()) {
    return Status::InvalidArgument("row id out of range");
  }
  ++mutation_epoch_;
  stats_.RemoveRow(schema_, rows_[row_id]);
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(row_id));
  MarkIndexesDirty();
  return Status::OK();
}

void Table::Truncate() {
  ++mutation_epoch_;
  rows_.clear();
  stats_.Clear();
  MarkIndexesDirty();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column_name) {
  for (const auto& index : indexes_) {
    if (index->name() == index_name) {
      return Status::AlreadyExists("index " + index_name + " already exists");
    }
  }
  Result<size_t> column = schema_.FindColumn("", column_name);
  if (!column.ok()) return column.status();
  auto index = std::make_unique<OrderedIndex>(index_name, column.value());
  index->RebuildFrom(*this);
  indexes_.push_back(std::move(index));
  return Status::OK();
}

OrderedIndex* Table::GetIndexOnColumn(size_t column) {
  for (auto& index : indexes_) {
    if (index->column() != column) continue;
    if (index->dirty()) {
      index->RebuildFrom(*this);
    } else {
      index->EnsureSorted();
    }
    return index.get();
  }
  return nullptr;
}

bool Table::HasIndexOnColumn(size_t column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return true;
  }
  return false;
}

void Table::MarkIndexesDirty() {
  for (auto& index : indexes_) index->MarkDirty();
}

}  // namespace rfv
