#include "storage/table.h"

#include <algorithm>
#include <utility>

#include "common/epoch.h"

namespace rfv {

Status Table::ValidateAndCoerce(Row* row) const {
  if (row->size() != schema_.NumColumns()) {
    return Status::TypeError(
        "row arity " + std::to_string(row->size()) + " does not match table " +
        name_ + " with " + std::to_string(schema_.NumColumns()) + " columns");
  }
  for (size_t i = 0; i < row->size(); ++i) {
    Value& v = row->at(i);
    if (v.is_null()) continue;
    const DataType want = schema_.column(i).type;
    const DataType have = v.type();
    if (have == want) continue;
    if (want == DataType::kDouble && have == DataType::kInt64) {
      v = Value::Double(static_cast<double>(v.AsInt()));
      continue;
    }
    if (want == DataType::kInt64 && have == DataType::kDouble) {
      // Accept doubles that are exact integers (parser produces int
      // literals, but expressions may compute doubles).
      const double d = v.AsDouble();
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        v = Value::Int(as_int);
        continue;
      }
    }
    return Status::TypeError("column " + schema_.column(i).name +
                             " expects " + DataTypeName(want) + ", got " +
                             DataTypeName(have));
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  RFV_RETURN_IF_ERROR(ValidateAndCoerce(&row));
  std::lock_guard<std::mutex> lock(snap_mu_);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  const size_t row_id = rows_.size();
  MarkDirtyFromLocked(row_id);
  rows_.push_back(std::move(row));
  live_rows_.store(rows_.size(), std::memory_order_release);
  stats_.InsertRow(schema_, rows_.back());
  for (auto& index : indexes_) {
    if (!index->dirty()) {
      index->Insert(rows_.back()[index->column()], row_id);
    }
  }
  return Status::OK();
}

Status Table::InsertBatch(std::vector<Row> rows) {
  for (Row& row : rows) {
    RFV_RETURN_IF_ERROR(ValidateAndCoerce(&row));
  }
  std::lock_guard<std::mutex> lock(snap_mu_);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  MarkDirtyFromLocked(rows_.size());
  rows_.reserve(rows_.size() + rows.size());
  for (Row& row : rows) {
    rows_.push_back(std::move(row));
    stats_.InsertRow(schema_, rows_.back());
  }
  live_rows_.store(rows_.size(), std::memory_order_release);
  MarkIndexesDirty();
  return Status::OK();
}

Status Table::UpdateRow(size_t row_id, Row row) {
  if (row_id >= rows_.size()) {
    return Status::InvalidArgument("row id out of range");
  }
  RFV_RETURN_IF_ERROR(ValidateAndCoerce(&row));
  std::lock_guard<std::mutex> lock(snap_mu_);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  MarkDirtyFromLocked(row_id);
  stats_.ReplaceRow(schema_, rows_[row_id], row);
  rows_[row_id] = std::move(row);
  MarkIndexesDirty();
  return Status::OK();
}

Status Table::UpdateCell(size_t row_id, size_t column, Value value) {
  if (row_id >= rows_.size()) {
    return Status::InvalidArgument("row id out of range");
  }
  if (column >= schema_.NumColumns()) {
    return Status::InvalidArgument("column out of range");
  }
  Row updated = rows_[row_id];
  updated[column] = std::move(value);
  RFV_RETURN_IF_ERROR(ValidateAndCoerce(&updated));
  std::lock_guard<std::mutex> lock(snap_mu_);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  MarkDirtyFromLocked(row_id);
  stats_.ReplaceRow(schema_, rows_[row_id], updated);
  rows_[row_id] = std::move(updated);
  // Only indexes keyed on the changed column go stale — the paper's
  // incremental view maintenance updates `val` cells through `pos`
  // indexes, which must stay warm.
  for (auto& index : indexes_) {
    if (index->column() == column) index->MarkDirty();
  }
  return Status::OK();
}

Status Table::DeleteRow(size_t row_id) {
  if (row_id >= rows_.size()) {
    return Status::InvalidArgument("row id out of range");
  }
  std::lock_guard<std::mutex> lock(snap_mu_);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  MarkDirtyFromLocked(row_id);
  stats_.RemoveRow(schema_, rows_[row_id]);
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(row_id));
  live_rows_.store(rows_.size(), std::memory_order_release);
  MarkIndexesDirty();
  return Status::OK();
}

void Table::Truncate() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  MarkDirtyFromLocked(0);
  rows_.clear();
  live_rows_.store(0, std::memory_order_release);
  stats_.Clear();
  MarkIndexesDirty();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column_name) {
  for (const auto& index : indexes_) {
    if (index->name() == index_name) {
      return Status::AlreadyExists("index " + index_name + " already exists");
    }
  }
  Result<size_t> column = schema_.FindColumn("", column_name);
  if (!column.ok()) return column.status();
  auto index = std::make_unique<OrderedIndex>(index_name, column.value());
  index->RebuildFrom(*this);
  indexes_.push_back(std::move(index));
  return Status::OK();
}

OrderedIndex* Table::GetIndexOnColumn(size_t column) {
  // Serialize rebuilds so two concurrent SELECTs racing to warm the same
  // index don't build it twice over each other's state. The returned
  // pointer itself is only isolated against DML by the engine-level
  // write mutex, not by snapshots (documented limitation, DESIGN §14).
  std::lock_guard<std::mutex> lock(snap_mu_);
  for (auto& index : indexes_) {
    if (index->column() != column) continue;
    if (index->dirty()) {
      index->RebuildFrom(*this);
    } else {
      index->EnsureSorted();
    }
    return index.get();
  }
  return nullptr;
}

bool Table::HasIndexOnColumn(size_t column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return true;
  }
  return false;
}

void Table::MarkIndexesDirty() {
  for (auto& index : indexes_) index->MarkDirty();
}

TableStats Table::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return stats_;
}

void Table::Analyze() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  stats_.Analyze(schema_, rows_);
}

TableSnapshotPtr Table::PinSnapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (writer_depth_ == 0) RefreshSnapshotLocked();
  if (snapshot_ == nullptr) {
    // A write bracket opened before any reader ever pinned; the
    // committed pre-statement image is empty only if the table never
    // held committed rows, which BeginWrite guarantees by refreshing.
    snapshot_ = std::make_shared<const TableSnapshot>();
  }
  return snapshot_;
}

void Table::BeginWrite() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (writer_depth_ == 0) {
    // Capture the committed image before the statement mutates anything,
    // so concurrent PinSnapshot() calls during the bracket see it.
    RefreshSnapshotLocked();
  }
  ++writer_depth_;
}

void Table::EndWrite() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (--writer_depth_ == 0) {
    // Publish the statement's effects as one atomic snapshot flip.
    RefreshSnapshotLocked();
  }
}

void Table::MarkDirtyFromLocked(size_t row_id) {
  dirty_from_ = std::min(dirty_from_, row_id);
}

void Table::RefreshSnapshotLocked() const {
  const uint64_t epoch = mutation_epoch_.load(std::memory_order_acquire);
  if (snapshot_ != nullptr && snapshot_->epoch() == epoch) return;

  constexpr size_t kChunkRows = TableSnapshot::kChunkRows;
  // Rows below dirty_from_ are byte-identical to the published snapshot,
  // so every *full* chunk entirely below it can be shared; everything
  // from the first shared-boundary row onward is copied fresh.
  size_t shared_chunks = 0;
  if (snapshot_ != nullptr) {
    const size_t unchanged = std::min(dirty_from_, rows_.size());
    shared_chunks = std::min(unchanged / kChunkRows,
                             snapshot_->num_rows() / kChunkRows);
    shared_chunks = std::min(shared_chunks, snapshot_->num_chunks());
  }

  std::vector<std::shared_ptr<const RowChunk>> chunks;
  chunks.reserve((rows_.size() + kChunkRows - 1) / kChunkRows);
  for (size_t c = 0; c < shared_chunks; ++c) chunks.push_back(snapshot_->chunk(c));
  for (size_t pos = shared_chunks * kChunkRows; pos < rows_.size();
       pos += kChunkRows) {
    auto chunk = std::make_shared<RowChunk>();
    const size_t end = std::min(pos + kChunkRows, rows_.size());
    chunk->rows.assign(rows_.begin() + static_cast<ptrdiff_t>(pos),
                       rows_.begin() + static_cast<ptrdiff_t>(end));
    chunks.push_back(std::move(chunk));
  }

  TableSnapshotPtr retired = std::move(snapshot_);
  snapshot_ = std::make_shared<const TableSnapshot>(std::move(chunks),
                                                    rows_.size(), epoch);
  dirty_from_ = static_cast<size_t>(-1);
  if (retired != nullptr) {
    EpochManager& manager = EpochManager::Global();
    manager.Retire(std::static_pointer_cast<const void>(std::move(retired)));
    manager.Reclaim();
  }
}

}  // namespace rfv
