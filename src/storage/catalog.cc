#include "storage/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace rfv {

namespace {

/// Splits `schema.table` at the first dot; false when there is none.
bool SplitQualified(const std::string& name, std::string* schema,
                    std::string* table) {
  const size_t dot = name.find('.');
  if (dot == std::string::npos) return false;
  *schema = name.substr(0, dot);
  *table = name.substr(dot + 1);
  return true;
}

}  // namespace

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToLower(name);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (IsVirtualName(key)) {
    return Status::InvalidArgument("schema '" + key.substr(0, key.find('.')) +
                                   "' is reserved for system views");
  }
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto table = std::make_unique<Table>(key, std::move(schema));
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  const std::string key = ToLower(name);
  // Recursive: serving a virtual name calls back into GetTable for the
  // stored tables the system-view provider reads.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = tables_.find(key);
  if (it != tables_.end()) return it->second.get();

  std::string schema_name;
  std::string table_name;
  if (SplitQualified(key, &schema_name, &table_name)) {
    const auto provider_it = virtual_schemas_.find(schema_name);
    if (provider_it != virtual_schemas_.end()) {
      VirtualTableProvider* provider = provider_it->second;
      std::vector<Row> rows;
      RFV_ASSIGN_OR_RETURN(rows,
                           provider->MaterializeVirtualTable(table_name));
      Table* snapshot = nullptr;
      const auto cached = virtual_cache_.find(key);
      if (cached != virtual_cache_.end()) {
        // Refill in place: pointers handed out earlier (open scans of a
        // self-join binding the same view twice) stay valid; the
        // mutation-epoch bump only matters to scans opened *before* the
        // re-materialization, which a sequential session cannot have.
        snapshot = cached->second.get();
        snapshot->Truncate();
      } else {
        Schema schema;
        RFV_ASSIGN_OR_RETURN(schema, provider->VirtualTableSchema(table_name));
        auto table = std::make_unique<Table>(key, std::move(schema));
        snapshot = table.get();
        virtual_cache_[key] = std::move(table);
      }
      RFV_RETURN_IF_ERROR(snapshot->InsertBatch(std::move(rows)));
      // Virtual snapshots are born analyzed: they are tiny and the
      // cardinality estimator would otherwise see never-analyzed stats.
      snapshot->Analyze();
      return snapshot;
    }
  }
  return Status::NotFound("table " + name + " does not exist");
}

bool Catalog::HasTable(const std::string& name) const {
  const std::string key = ToLower(name);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (tables_.count(key) > 0) return true;
  std::string schema_name;
  std::string table_name;
  if (!SplitQualified(key, &schema_name, &table_name)) return false;
  const auto it = virtual_schemas_.find(schema_name);
  if (it == virtual_schemas_.end()) return false;
  const std::vector<std::string> names = it->second->VirtualTableNames();
  return std::find(names.begin(), names.end(), table_name) != names.end();
}

Status Catalog::DropTable(const std::string& name) {
  const std::string key = ToLower(name);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (IsVirtualName(key)) {
    return Status::InvalidArgument("system view " + key +
                                   " cannot be dropped");
  }
  const auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Catalog::RegisterVirtualSchema(const std::string& schema_name,
                                    VirtualTableProvider* provider) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  virtual_schemas_[ToLower(schema_name)] = provider;
}

bool Catalog::IsVirtualName(const std::string& name) const {
  std::string schema_name;
  std::string table_name;
  if (!SplitQualified(ToLower(name), &schema_name, &table_name)) return false;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return virtual_schemas_.count(schema_name) > 0;
}

std::vector<std::string> Catalog::VirtualTableNames() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [schema_name, provider] : virtual_schemas_) {
    for (const std::string& table : provider->VirtualTableNames()) {
      out.push_back(schema_name + "." + table);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rfv
