#include "storage/catalog.h"

#include "common/str_util.h"

namespace rfv {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto table = std::make_unique<Table>(key, std::move(schema));
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace rfv
