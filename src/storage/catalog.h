#ifndef RFVIEW_STORAGE_CATALOG_H_
#define RFVIEW_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "storage/virtual_table.h"

namespace rfv {

/// Name → table registry. Names are case-insensitive (stored lowercase),
/// matching the engine's SQL identifier rules. Materialized view *contents*
/// are ordinary tables registered here; view *metadata* lives in
/// `ViewManager` (src/view) which references this catalog.
///
/// Besides ordinary tables, the catalog serves *virtual* tables under
/// registered schema prefixes (`RegisterVirtualSchema`): a qualified
/// name like `rfv_system.queries` resolves by asking the schema's
/// `VirtualTableProvider` to materialize its current rows into a cached
/// content table. Resolution happens on every `GetTable` call — i.e. at
/// bind/scan-open time — so every query sees a fresh, then stable,
/// snapshot. Virtual tables cannot be created, dropped or written.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Errors: kAlreadyExists; kInvalidArgument
  /// for names inside a reserved virtual schema.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks a table up; virtual names (`schema.table` with a registered
  /// schema) re-materialize their snapshot first. Errors: kNotFound.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Drops a table. Errors: kNotFound; kInvalidArgument for virtual
  /// names (system views are not droppable).
  Status DropTable(const std::string& name);

  /// All *stored* table names, sorted. Virtual tables are excluded (use
  /// VirtualTableNames); callers iterate this for ANALYZE and stats.
  std::vector<std::string> TableNames() const;

  /// Registers `provider` as the source of tables under
  /// `schema_name.*`. The provider must outlive the catalog.
  void RegisterVirtualSchema(const std::string& schema_name,
                             VirtualTableProvider* provider);

  /// True when `name` is `schema.table` with a registered virtual
  /// schema (regardless of whether the provider serves `table`).
  bool IsVirtualName(const std::string& name) const;

  /// Qualified names of every servable virtual table, sorted.
  std::vector<std::string> VirtualTableNames() const;

 private:
  /// Serializes map mutations (DDL, virtual-cache refills) against
  /// concurrent lookups. Recursive because serving a virtual table
  /// re-enters GetTable: the system-view provider reads stored tables
  /// while the catalog materializes its snapshot.
  mutable std::recursive_mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, VirtualTableProvider*> virtual_schemas_;
  /// Snapshot tables for virtual names, refilled on each GetTable so
  /// handed-out pointers stay stable across re-materializations.
  mutable std::map<std::string, std::unique_ptr<Table>> virtual_cache_;
};

}  // namespace rfv

#endif  // RFVIEW_STORAGE_CATALOG_H_
