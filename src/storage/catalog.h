#ifndef RFVIEW_STORAGE_CATALOG_H_
#define RFVIEW_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace rfv {

/// Name → table registry. Names are case-insensitive (stored lowercase),
/// matching the engine's SQL identifier rules. Materialized view *contents*
/// are ordinary tables registered here; view *metadata* lives in
/// `ViewManager` (src/view) which references this catalog.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Errors: kAlreadyExists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks a table up. Errors: kNotFound.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Drops a table. Errors: kNotFound.
  Status DropTable(const std::string& name);

  /// All table names, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace rfv

#endif  // RFVIEW_STORAGE_CATALOG_H_
