#ifndef RFVIEW_STORAGE_TABLE_H_
#define RFVIEW_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "stats/table_stats.h"
#include "storage/index.h"

namespace rfv {

/// An in-memory table: a named schema plus a row store and a set of
/// ordered secondary indexes.
///
/// Row ids are dense positions in the store; DELETE compacts immediately,
/// so row ids are only stable between DML statements (the executor never
/// holds row ids across statements).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Tables own their indexes; moving would invalidate executor references.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t row_id) const { return rows_[row_id]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row. Errors: kTypeError on arity or (strict) type
  /// mismatch; NULLs are accepted in any column, integers widen to
  /// double columns.
  Status Insert(Row row);

  /// Bulk append without per-row index maintenance; indexes are marked
  /// dirty once. Used by workload generators.
  Status InsertBatch(std::vector<Row> rows);

  /// Replaces the row at `row_id` (same validation as Insert).
  Status UpdateRow(size_t row_id, Row row);

  /// Sets one cell of one row.
  Status UpdateCell(size_t row_id, size_t column, Value value);

  /// Removes the row at `row_id`, compacting the store.
  Status DeleteRow(size_t row_id);

  /// Removes all rows.
  void Truncate();

  /// Creates an ordered index named `index_name` over `column_name`.
  /// Errors: kNotFound for unknown column, kAlreadyExists for duplicate
  /// index names.
  Status CreateIndex(const std::string& index_name,
                     const std::string& column_name);

  /// Returns a usable (non-dirty) index over `column`, rebuilding it if
  /// necessary; nullptr when no index exists on that column.
  OrderedIndex* GetIndexOnColumn(size_t column);

  /// True when some index exists on `column` (without forcing a rebuild).
  bool HasIndexOnColumn(size_t column) const;

  const std::vector<std::unique_ptr<OrderedIndex>>& indexes() const {
    return indexes_;
  }

  /// Statistics maintained incrementally by every DML path above (row
  /// count stays exact; see TableStats for the widen-only discipline).
  const TableStats& stats() const { return stats_; }

  /// Full statistics recomputation — the `ANALYZE` statement. Also run
  /// by the view layer after materialize/refresh so view content tables
  /// always carry exact distinct counts and tight ranges.
  void Analyze() { stats_.Analyze(schema_, rows_); }

  /// Counter bumped by every mutation of the row store (Insert,
  /// InsertBatch, UpdateRow, UpdateCell, DeleteRow, Truncate) — but not
  /// by read-side maintenance like Analyze or CreateIndex. Open scans
  /// snapshot it and refuse to continue (ExecutionError) when it moved:
  /// row ids are positional, so DML under an open scan would silently
  /// skip or repeat rows.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  /// Validates a row against the schema and coerces int→double where the
  /// column is kDouble.
  Status ValidateAndCoerce(Row* row) const;

  void MarkIndexesDirty();

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  TableStats stats_;
  uint64_t mutation_epoch_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_STORAGE_TABLE_H_
