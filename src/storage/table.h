#ifndef RFVIEW_STORAGE_TABLE_H_
#define RFVIEW_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "stats/table_stats.h"
#include "storage/index.h"
#include "storage/table_snapshot.h"

namespace rfv {

/// An in-memory table: a named schema plus a row store and a set of
/// ordered secondary indexes.
///
/// Row ids are dense positions in the store; DELETE compacts immediately,
/// so row ids are only stable between DML statements (the executor never
/// holds row ids across statements).
///
/// Concurrency model (single writer, many readers): all mutations are
/// serialized by the caller (Database holds one write mutex per engine);
/// readers never touch `rows_` directly but pin an immutable
/// `TableSnapshot` via PinSnapshot(). Snapshots are rebuilt lazily with
/// chunk-level copy-on-write and published at *statement* granularity:
/// a writer brackets each DML statement with BeginWrite()/EndWrite()
/// (see WriteGuard), and PinSnapshot() during the bracket returns the
/// last committed image, so a multi-row statement is never observed
/// half-applied. Superseded snapshots are retired into the global
/// EpochManager and reclaimed once no reader epoch can see them.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Tables own their indexes; moving would invalidate executor references.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return live_rows_.load(std::memory_order_acquire); }
  const Row& row(size_t row_id) const { return rows_[row_id]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row. Errors: kTypeError on arity or (strict) type
  /// mismatch; NULLs are accepted in any column, integers widen to
  /// double columns.
  Status Insert(Row row);

  /// Bulk append without per-row index maintenance; indexes are marked
  /// dirty once. Used by workload generators.
  Status InsertBatch(std::vector<Row> rows);

  /// Replaces the row at `row_id` (same validation as Insert).
  Status UpdateRow(size_t row_id, Row row);

  /// Sets one cell of one row.
  Status UpdateCell(size_t row_id, size_t column, Value value);

  /// Removes the row at `row_id`, compacting the store.
  Status DeleteRow(size_t row_id);

  /// Removes all rows.
  void Truncate();

  /// Creates an ordered index named `index_name` over `column_name`.
  /// Errors: kNotFound for unknown column, kAlreadyExists for duplicate
  /// index names.
  Status CreateIndex(const std::string& index_name,
                     const std::string& column_name);

  /// Returns a usable (non-dirty) index over `column`, rebuilding it if
  /// necessary; nullptr when no index exists on that column. Rebuilds
  /// are serialized, but returned indexes are NOT isolated against
  /// concurrent DML the way snapshots are (see DESIGN §14).
  OrderedIndex* GetIndexOnColumn(size_t column);

  /// True when some index exists on `column` (without forcing a rebuild).
  bool HasIndexOnColumn(size_t column) const;

  const std::vector<std::unique_ptr<OrderedIndex>>& indexes() const {
    return indexes_;
  }

  /// Statistics maintained incrementally by every DML path above (row
  /// count stays exact; see TableStats for the widen-only discipline).
  /// Writer-side accessor — concurrent readers use StatsSnapshot().
  const TableStats& stats() const { return stats_; }

  /// Coherent copy of the statistics, taken under the table lock. The
  /// planner/rewriter/system-view read paths use this so a concurrent
  /// DML statement can never expose half-updated stats.
  TableStats StatsSnapshot() const;

  /// Full statistics recomputation — the `ANALYZE` statement. Also run
  /// by the view layer after materialize/refresh so view content tables
  /// always carry exact distinct counts and tight ranges.
  void Analyze();

  /// Counter bumped by every mutation of the row store (Insert,
  /// InsertBatch, UpdateRow, UpdateCell, DeleteRow, Truncate) — but not
  /// by read-side maintenance like Analyze or CreateIndex. Snapshots are
  /// stamped with it, so it doubles as the staleness marker that
  /// triggers a copy-on-write refresh on the next pin.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

  /// Pins the current committed snapshot, refreshing it first (chunked
  /// copy-on-write) when the row store moved on and no write bracket is
  /// open. During an open BeginWrite/EndWrite bracket the *last
  /// committed* snapshot is returned, whatever the live store looks
  /// like mid-statement. Never returns nullptr.
  TableSnapshotPtr PinSnapshot() const;

  /// Opens a statement-granular write bracket: captures the committed
  /// image for concurrent readers, then lets the caller mutate freely.
  /// Brackets nest (maintenance cascades re-enter on the same table);
  /// only the outermost EndWrite publishes a fresh snapshot and retires
  /// the old one into the EpochManager.
  void BeginWrite();
  void EndWrite();

  /// RAII BeginWrite/EndWrite bracket for one DML statement.
  class WriteGuard {
   public:
    explicit WriteGuard(Table* table) : table_(table) {
      if (table_ != nullptr) table_->BeginWrite();
    }
    ~WriteGuard() {
      if (table_ != nullptr) table_->EndWrite();
    }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    Table* table_;
  };

 private:
  /// Validates a row against the schema and coerces int→double where the
  /// column is kDouble.
  Status ValidateAndCoerce(Row* row) const;

  void MarkIndexesDirty();

  /// Rebuilds `snapshot_` from `rows_` when stale, sharing every full
  /// chunk below the first mutated row with the previous snapshot and
  /// retiring the superseded snapshot. Caller holds snap_mu_.
  void RefreshSnapshotLocked() const;

  /// Records that rows at positions >= `row_id` may differ from the
  /// published snapshot. Caller holds snap_mu_.
  void MarkDirtyFromLocked(size_t row_id);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  TableStats stats_;
  std::atomic<uint64_t> mutation_epoch_{0};

  /// Lock-free mirror of rows_.size() for racy progress reads (exact
  /// row counts on the read path come from the pinned snapshot).
  std::atomic<size_t> live_rows_{0};

  /// Guards snapshot publication state (and serializes mutations with
  /// snapshot refresh; the engine-level write mutex already serializes
  /// mutations with each other).
  mutable std::mutex snap_mu_;
  /// Last committed snapshot; lazily (re)built under snap_mu_.
  mutable TableSnapshotPtr snapshot_;
  /// First row position that may differ from snapshot_; SIZE_MAX when
  /// the snapshot covers rows_ exactly.
  mutable size_t dirty_from_ = static_cast<size_t>(-1);
  /// Nesting depth of open write brackets.
  int writer_depth_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_STORAGE_TABLE_H_
