#ifndef RFVIEW_STORAGE_TABLE_SNAPSHOT_H_
#define RFVIEW_STORAGE_TABLE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/row.h"

namespace rfv {

/// One fixed-capacity chunk of a table snapshot. Immutable once
/// published: copy-on-write happens at chunk granularity, so a DML that
/// touches row r copies only r's chunk (append copies the tail chunk)
/// and every other chunk is shared between the old and new snapshot.
struct RowChunk {
  std::vector<Row> rows;
};

/// An immutable, epoch-stamped snapshot of a table's row store: a list
/// of shared chunk pointers plus the covered row count. Readers address
/// rows by the same dense positional row ids as the live store; the
/// snapshot simply freezes the positions as of one mutation epoch.
///
/// Snapshots are published by `Table` behind `std::shared_ptr` and
/// retired into the `EpochManager` when superseded, so an open scan
/// (which pins both the pointer and a reader epoch) reads a stable
/// image no matter what DML does to the live table meanwhile.
class TableSnapshot {
 public:
  /// Rows per chunk. A power of two so row-id → (chunk, offset)
  /// addressing is shift/mask; matches RowBatch::kDefaultCapacity so one
  /// scan batch/vector never straddles more than two chunks.
  static constexpr size_t kChunkRows = 1024;

  TableSnapshot() = default;
  TableSnapshot(std::vector<std::shared_ptr<const RowChunk>> chunks,
                size_t num_rows, uint64_t epoch)
      : chunks_(std::move(chunks)), num_rows_(num_rows), epoch_(epoch) {}

  TableSnapshot(const TableSnapshot&) = delete;
  TableSnapshot& operator=(const TableSnapshot&) = delete;

  size_t num_rows() const { return num_rows_; }

  /// The table mutation epoch this snapshot captured.
  uint64_t epoch() const { return epoch_; }

  const Row& row(size_t row_id) const {
    return chunks_[row_id / kChunkRows]->rows[row_id % kChunkRows];
  }

  size_t num_chunks() const { return chunks_.size(); }
  const std::shared_ptr<const RowChunk>& chunk(size_t i) const {
    return chunks_[i];
  }

 private:
  std::vector<std::shared_ptr<const RowChunk>> chunks_;
  size_t num_rows_ = 0;
  uint64_t epoch_ = 0;
};

using TableSnapshotPtr = std::shared_ptr<const TableSnapshot>;

}  // namespace rfv

#endif  // RFVIEW_STORAGE_TABLE_SNAPSHOT_H_
