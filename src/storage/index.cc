#include "storage/index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "storage/table.h"

namespace rfv {

namespace {

bool EntryLess(const Value& a, const Value& b) { return a.Compare(b) < 0; }

// Probes happen per outer row in index nested-loop joins; cache the
// counter pointer so the hot path is one relaxed atomic add.
void CountProbe() {
  static Counter* probes = MetricsRegistry::Global().GetCounter(
      "rfv_index_probes_total", {},
      "Point and range lookups against ordered indexes");
  probes->Increment();
}

}  // namespace

void OrderedIndex::Insert(const Value& key, size_t row_id) {
  if (!entries_.empty() && EntryLess(key, entries_.back().key)) {
    sorted_ = false;
  }
  entries_.push_back(Entry{key, row_id});
}

void OrderedIndex::RebuildFrom(const Table& table) {
  entries_.clear();
  entries_.reserve(table.NumRows());
  for (size_t i = 0; i < table.NumRows(); ++i) {
    entries_.push_back(Entry{table.row(i)[column_], i});
  }
  sorted_ = false;
  dirty_ = false;
  EnsureSorted();
}

void OrderedIndex::EnsureSorted() {
  if (sorted_) return;
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return EntryLess(a.key, b.key);
                   });
  sorted_ = true;
}

std::vector<size_t> OrderedIndex::Lookup(const Value& key) const {
  RFV_CHECK(!dirty_);
  RFV_CHECK(sorted_);
  CountProbe();
  std::vector<size_t> out;
  auto [lo, hi] = std::equal_range(
      entries_.begin(), entries_.end(), Entry{key, 0},
      [](const Entry& a, const Entry& b) { return EntryLess(a.key, b.key); });
  for (auto it = lo; it != hi; ++it) out.push_back(it->row_id);
  return out;
}

std::vector<size_t> OrderedIndex::LookupRange(const Value& lo, bool has_lo,
                                              const Value& hi,
                                              bool has_hi) const {
  RFV_CHECK(!dirty_);
  RFV_CHECK(sorted_);
  CountProbe();
  auto begin = entries_.begin();
  auto end = entries_.end();
  const auto cmp = [](const Entry& a, const Entry& b) {
    return EntryLess(a.key, b.key);
  };
  if (has_lo) {
    begin = std::lower_bound(entries_.begin(), entries_.end(), Entry{lo, 0},
                             cmp);
  }
  if (has_hi) {
    end = std::upper_bound(entries_.begin(), entries_.end(), Entry{hi, 0},
                           cmp);
  }
  std::vector<size_t> out;
  for (auto it = begin; it < end; ++it) out.push_back(it->row_id);
  return out;
}

}  // namespace rfv
