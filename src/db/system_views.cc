#include "db/system_views.h"

#include <map>
#include <optional>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "sequence/window_spec.h"
#include "storage/table.h"

namespace rfv {

namespace {

/// ms-or-NULL rendering of phase timings: a phase the statement kind
/// bypassed is NULL, not 0 (0 would read as "measured, instant").
Value MsOrNull(const std::optional<int64_t>& ns) {
  if (!ns.has_value()) return Value::Null();
  return Value::Double(static_cast<double>(*ns) / 1e6);
}

Schema QueriesSchema() {
  return Schema({
      {"query_id", DataType::kInt64},
      {"sql", DataType::kString},
      {"fingerprint", DataType::kString},
      {"kind", DataType::kString},
      {"status", DataType::kString},
      {"error", DataType::kString},
      {"duration_ms", DataType::kDouble},
      {"parse_ms", DataType::kDouble},
      {"rewrite_ms", DataType::kDouble},
      {"bind_ms", DataType::kDouble},
      {"plan_ms", DataType::kDouble},
      {"execute_ms", DataType::kDouble},
      {"rows_in", DataType::kInt64},
      {"rows_out", DataType::kInt64},
      {"rewrite", DataType::kString},
      {"rewrite_view", DataType::kString},
      {"cost_estimate", DataType::kDouble},
      {"candidates", DataType::kInt64},
  });
}

Schema OperatorsSchema() {
  return Schema({
      {"query_id", DataType::kInt64},
      {"op", DataType::kString},
      {"depth", DataType::kInt64},
      {"rows_in", DataType::kInt64},
      {"rows_out", DataType::kInt64},
      {"next_calls", DataType::kInt64},
      {"batches_out", DataType::kInt64},
      {"open_ms", DataType::kDouble},
      {"next_ms", DataType::kDouble},
      {"peak_buffered_rows", DataType::kInt64},
  });
}

Schema MetricsSchema() {
  return Schema({
      {"name", DataType::kString},
      {"labels", DataType::kString},
      {"kind", DataType::kString},
      {"count", DataType::kInt64},
      {"sum_seconds", DataType::kDouble},
      {"help", DataType::kString},
  });
}

Schema ViewsSchema() {
  return Schema({
      {"view_name", DataType::kString},
      {"base_table", DataType::kString},
      {"value_column", DataType::kString},
      {"order_column", DataType::kString},
      {"partition_columns", DataType::kString},
      {"fn", DataType::kString},
      {"window_spec", DataType::kString},
      {"n", DataType::kInt64},
      {"indexed", DataType::kBool},
      {"derived", DataType::kBool},
      {"content_rows", DataType::kInt64},
      {"full_refreshes", DataType::kInt64},
      {"incremental_updates", DataType::kInt64},
      {"maintenance_rows", DataType::kInt64},
  });
}

Schema TableStatsSchema() {
  return Schema({
      {"table_name", DataType::kString},
      {"column_name", DataType::kString},
      {"column_type", DataType::kString},
      {"row_count", DataType::kInt64},
      {"non_null_count", DataType::kInt64},
      {"null_count", DataType::kInt64},
      {"distinct_count", DataType::kInt64},
      {"min_value", DataType::kDouble},
      {"max_value", DataType::kDouble},
      {"stale", DataType::kBool},
      {"analyze_count", DataType::kInt64},
      {"dml_since_analyze", DataType::kInt64},
  });
}

Schema TraceSpansSchema() {
  return Schema({
      {"trace_id", DataType::kInt64},
      {"name", DataType::kString},
      {"depth", DataType::kInt64},
      {"start_us", DataType::kInt64},
      {"dur_us", DataType::kInt64},
      {"args", DataType::kString},
  });
}

}  // namespace

std::vector<std::string> SystemViewProvider::VirtualTableNames() const {
  return {"metrics",     "operators",   "queries",
          "table_stats", "trace_spans", "views"};
}

Result<Schema> SystemViewProvider::VirtualTableSchema(
    const std::string& table) const {
  if (table == "queries") return QueriesSchema();
  if (table == "operators") return OperatorsSchema();
  if (table == "metrics") return MetricsSchema();
  if (table == "views") return ViewsSchema();
  if (table == "table_stats") return TableStatsSchema();
  if (table == "trace_spans") return TraceSpansSchema();
  return Status::NotFound(std::string(kSchemaName) + "." + table +
                          " is not a system view");
}

Result<std::vector<Row>> SystemViewProvider::MaterializeVirtualTable(
    const std::string& table) const {
  if (table == "queries") return QueriesRows();
  if (table == "operators") return OperatorsRows();
  if (table == "metrics") return MetricsRows();
  if (table == "views") return ViewsRows();
  if (table == "table_stats") return TableStatsRows();
  if (table == "trace_spans") return TraceSpansRows();
  return Status::NotFound(std::string(kSchemaName) + "." + table +
                          " is not a system view");
}

std::vector<Row> SystemViewProvider::QueriesRows() const {
  std::vector<Row> rows;
  for (const QueryEvent& e : query_log_->Snapshot()) {
    std::map<std::string, int64_t> phases(e.phase_ns.begin(),
                                          e.phase_ns.end());
    const auto phase = [&phases](const char* name) -> std::optional<int64_t> {
      const auto it = phases.find(name);
      if (it == phases.end()) return std::nullopt;
      return it->second;
    };
    Row row;
    row.Append(Value::Int(e.query_id));
    row.Append(Value::String(e.sql));
    row.Append(Value::String(e.fingerprint));
    row.Append(Value::String(e.kind));
    row.Append(Value::String(e.status));
    row.Append(Value::String(e.error));
    row.Append(Value::Double(static_cast<double>(e.duration_ns) / 1e6));
    row.Append(MsOrNull(phase("parse")));
    row.Append(MsOrNull(phase("rewrite")));
    row.Append(MsOrNull(phase("bind")));
    row.Append(MsOrNull(phase("plan")));
    row.Append(MsOrNull(phase("execute")));
    row.Append(Value::Int(e.rows_in));
    row.Append(Value::Int(e.rows_out));
    row.Append(Value::String(e.rewrite));
    row.Append(Value::String(e.rewrite_view));
    row.Append(e.cost_estimate < 0 ? Value::Null()
                                   : Value::Double(e.cost_estimate));
    row.Append(Value::Int(static_cast<int64_t>(e.candidates.size())));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> SystemViewProvider::OperatorsRows() const {
  std::vector<Row> rows;
  for (const QueryEvent& e : query_log_->Snapshot()) {
    for (const QueryEventOperator& o : e.operators) {
      Row row;
      row.Append(Value::Int(e.query_id));
      row.Append(Value::String(o.op));
      row.Append(Value::Int(o.depth));
      row.Append(Value::Int(o.rows_in));
      row.Append(Value::Int(o.rows_out));
      row.Append(Value::Int(o.next_calls));
      row.Append(Value::Int(o.batches_out));
      row.Append(Value::Double(o.open_ms));
      row.Append(Value::Double(o.next_ms));
      row.Append(Value::Int(o.peak_buffered_rows));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<Row> SystemViewProvider::MetricsRows() const {
  std::vector<Row> rows;
  for (const MetricSnapshot& m : MetricsRegistry::Global().Snapshot()) {
    Row row;
    row.Append(Value::String(m.name));
    row.Append(Value::String(m.labels));
    row.Append(Value::String(m.kind == MetricSnapshot::Kind::kCounter
                                 ? "counter"
                                 : m.kind == MetricSnapshot::Kind::kGauge
                                       ? "gauge"
                                       : "histogram"));
    row.Append(Value::Int(m.count));
    row.Append(m.kind == MetricSnapshot::Kind::kHistogram
                   ? Value::Double(m.sum_seconds)
                   : Value::Null());
    row.Append(Value::String(m.help));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> SystemViewProvider::ViewsRows() const {
  std::vector<Row> rows;
  for (const auto& v : views_->views()) {
    std::string partition_columns;
    for (const std::string& c : v->partition_columns) {
      if (!partition_columns.empty()) partition_columns += ",";
      partition_columns += c;
    }
    int64_t content_rows = 0;
    const Result<Table*> content = catalog_->GetTable(v->view_name);
    if (content.ok()) {
      content_rows = static_cast<int64_t>((*content)->NumRows());
    }
    const ViewMaintenanceCounters counters =
        views_->MaintenanceCounters(v->view_name);
    Row row;
    row.Append(Value::String(v->view_name));
    row.Append(Value::String(v->base_table));
    row.Append(Value::String(v->value_column));
    row.Append(Value::String(v->order_column));
    row.Append(Value::String(partition_columns));
    row.Append(Value::String(SeqAggFnName(v->fn)));
    row.Append(Value::String(v->window.ToString()));
    row.Append(Value::Int(v->n));
    row.Append(Value::Bool(v->indexed));
    row.Append(Value::Bool(v->derived));
    row.Append(Value::Int(content_rows));
    row.Append(Value::Int(counters.full_refreshes));
    row.Append(Value::Int(counters.incremental_updates));
    row.Append(Value::Int(counters.rows_written));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> SystemViewProvider::TableStatsRows() const {
  std::vector<Row> rows;
  for (const std::string& name : catalog_->TableNames()) {
    const Result<Table*> table = catalog_->GetTable(name);
    if (!table.ok()) continue;
    const Schema& schema = (*table)->schema();
    const TableStats stats = (*table)->StatsSnapshot();
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      // TableStats::columns tracks the schema lazily; missing entries
      // mean "no detail yet", which renders the same as empty stats.
      const ColumnStats col =
          c < stats.columns.size() ? stats.columns[c] : ColumnStats{};
      Row row;
      row.Append(Value::String(name));
      row.Append(Value::String(schema.column(c).name));
      row.Append(Value::String(DataTypeName(schema.column(c).type)));
      row.Append(Value::Int(stats.row_count));
      row.Append(Value::Int(col.non_null_count));
      row.Append(Value::Int(col.null_count));
      row.Append(col.distinct_count < 0 ? Value::Null()
                                        : Value::Int(col.distinct_count));
      row.Append(col.has_range ? Value::Double(col.min_value) : Value::Null());
      row.Append(col.has_range ? Value::Double(col.max_value) : Value::Null());
      row.Append(Value::Bool(col.stale));
      row.Append(Value::Int(stats.analyze_count));
      row.Append(Value::Int(stats.dml_since_analyze));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<Row> SystemViewProvider::TraceSpansRows() const {
  std::vector<Row> rows;
  for (const auto& trace : Tracer::Global().Retired()) {
    for (const TraceEvent& e : trace->events()) {
      std::string args;
      for (const auto& [key, value] : e.args) {
        if (!args.empty()) args += " ";
        args += key + "=" + value;
      }
      Row row;
      row.Append(Value::Int(trace->id()));
      row.Append(Value::String(e.name));
      row.Append(Value::Int(e.depth));
      row.Append(Value::Int(e.start_us));
      row.Append(Value::Int(e.dur_us));
      row.Append(Value::String(std::move(args)));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace rfv
