#ifndef RFVIEW_DB_QUERY_LOG_H_
#define RFVIEW_DB_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rfv {

/// Structured per-query workload capture.
///
/// `Database::Execute` finalizes one `QueryEvent` per statement —
/// template fingerprint, status, per-phase timings, row counts, the
/// rewrite decision with every candidate verdict, and the per-operator
/// metrics of the physical plan — and appends it to the database's
/// bounded `QueryLog` ring. The ring is queryable in SQL as
/// `rfv_system.queries` / `rfv_system.operators` (db/system_views.h)
/// and exportable as JSONL (`Database::ExportWorkload`, shell
/// `\workload export`), which is the observed-query-stream input the
/// ROADMAP's workload-driven view advisor consumes.

/// Normalizes SQL text into a workload template fingerprint: keywords
/// and identifiers are case-folded, whitespace/comments collapse to
/// single separators, literals (numbers, strings) are stripped to `?`,
/// and all-literal IN lists collapse to `IN (?)` so queries differing
/// only in list length share a template. Unlexable text falls back to
/// lowercased whitespace-collapsed SQL.
std::string NormalizeFingerprint(const std::string& sql);

/// One candidate (view, method) alternative the rewriter considered.
struct QueryEventCandidate {
  std::string view;
  bool derivable = false;
  std::string method;  ///< derivation method name; "" when !derivable
  bool chosen = false;
  /// Estimated total cost; -1 when the cost model did not price it.
  double cost = -1;
  /// Cost summary or not-derivable reason.
  std::string detail;
};

/// Per-operator metrics of the executed physical plan, flattened in
/// pre-order (entry 0 = root), mirroring OperatorMetricsEntry.
struct QueryEventOperator {
  std::string op;
  int depth = 0;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t next_calls = 0;
  int64_t batches_out = 0;
  double open_ms = 0;
  double next_ms = 0;
  int64_t peak_buffered_rows = 0;
};

/// The workload record of one Database::Execute call.
struct QueryEvent {
  int64_t query_id = 0;  ///< session-scoped, monotonically increasing
  std::string sql;
  std::string fingerprint;
  /// Statement kind: select/insert/update/delete/create_table/... ;
  /// "error" when the text did not parse.
  std::string kind;
  std::string status;  ///< "ok" or the failing status code name
  std::string error;   ///< failure message; empty on success
  int64_t duration_ns = 0;
  /// Wall phases in execution order (parse, rewrite, bind, plan,
  /// execute) — absent phases were bypassed by the statement kind.
  std::vector<std::pair<std::string, int64_t>> phase_ns;
  /// Rows entering the plan at its scan leaves / rows returned (DML
  /// reports affected rows as rows_out).
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  /// Chosen derivation method name; "none" when the query ran against
  /// base data (including non-window statements).
  std::string rewrite = "none";
  std::string rewrite_view;
  /// Estimated total cost of the chosen derivation; -1 when no costed
  /// rewrite happened.
  double cost_estimate = -1;
  std::vector<QueryEventCandidate> candidates;
  std::vector<QueryEventOperator> operators;

  /// The event as one JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Bounded ring of the most recent QueryEvents (thread-safe). Overflow
/// evicts oldest-first and counts evictions into
/// `rfv_workload_events_dropped_total`.
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  void Append(QueryEvent event);

  /// Snapshot of the retained events, oldest first.
  std::vector<QueryEvent> Snapshot() const;

  /// JSONL export: one ToJson() line per retained event, oldest first.
  std::string ToJsonl() const;

  size_t size() const;
  size_t capacity() const;
  /// Shrinking evicts (and counts as dropped) the oldest surplus.
  void SetCapacity(size_t capacity);
  /// Events appended over the ring's lifetime, including evicted ones.
  int64_t total_appended() const;

  static constexpr size_t kDefaultCapacity = 256;

 private:
  void EvictLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  int64_t total_appended_ = 0;
  std::deque<QueryEvent> events_;
};

}  // namespace rfv

#endif  // RFVIEW_DB_QUERY_LOG_H_
