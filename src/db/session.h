#ifndef RFVIEW_DB_SESSION_H_
#define RFVIEW_DB_SESSION_H_

#include <cstdint>
#include <string>

#include "db/database.h"

namespace rfv {

/// One client's connection to a Database: per-session options (seeded
/// from the engine defaults at construction, then mutated freely
/// without affecting other sessions), a prepared statement of record,
/// and the last error. A Session is NOT itself thread-safe — it models
/// one client thread — but any number of sessions may Execute against
/// the same Database concurrently: SELECTs read pinned table snapshots,
/// DML serializes on the engine write mutex, and every statement passes
/// the admission controller.
///
///   Database db;
///   Session a(&db), b(&db);
///   a.options().enable_view_rewrite = false;   // b unaffected
///   auto rs = a.Execute("SELECT ...");
///   if (!rs.ok()) { /* also recorded: a.last_error() */ }
class Session {
 public:
  explicit Session(Database* db);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Process-unique session id (monotone from 1).
  int64_t id() const { return id_; }

  Database* database() const { return db_; }

  /// This session's options — a private copy; mutations never leak to
  /// the engine defaults or to other sessions.
  Database::Options& options() { return options_; }
  const Database::Options& options() const { return options_; }

  /// Executes one SQL statement under this session's options. Failures
  /// are additionally recorded as last_error().
  Result<ResultSet> Execute(const std::string& sql);

  /// Validates `sql` (parse only) and stores it as this session's
  /// statement of record for ExecutePrepared(). Re-preparing replaces
  /// the previous statement.
  Status Prepare(const std::string& sql);

  /// Executes the prepared statement of record.
  /// Errors: kInvalidArgument when nothing is prepared.
  Result<ResultSet> ExecutePrepared();

  bool has_prepared() const { return has_prepared_; }
  const std::string& prepared_sql() const { return prepared_sql_; }

  /// Status of the most recent failed Execute/Prepare (OK when the last
  /// statement succeeded or nothing ran yet).
  const Status& last_error() const { return last_error_; }

  /// Statements executed through this session (successful or not).
  int64_t statements_executed() const { return statements_executed_; }

 private:
  Database* db_;
  int64_t id_;
  Database::Options options_;
  std::string prepared_sql_;
  bool has_prepared_ = false;
  Status last_error_;
  int64_t statements_executed_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_DB_SESSION_H_
