#ifndef RFVIEW_DB_CSV_H_
#define RFVIEW_DB_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"

namespace rfv {

/// CSV loading/unloading for warehouse-style bulk data movement.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line on import / write a column-name line on export.
  bool header = true;
  /// Input text treated as NULL on import (and written for NULLs on
  /// export).
  std::string null_text;
};

/// Imports `path` into the existing table `table_name`. Each field is
/// coerced to the column's declared type: INTEGER/DOUBLE parse
/// numerically, BOOLEAN accepts true/false/1/0 (case-insensitive),
/// VARCHAR takes the raw text; `null_text` (default: the empty field)
/// becomes NULL. Fields may be double-quoted with `""` escaping and may
/// contain embedded delimiters and newlines. Returns rows inserted;
/// errors: kNotFound (table/file), kInvalidArgument (arity or parse
/// failures, with line numbers). The import is all-or-nothing.
Result<size_t> ImportCsv(Catalog* catalog, const std::string& table_name,
                         const std::string& path,
                         const CsvOptions& options = {});

/// Exports the table to `path`. Returns rows written.
Result<size_t> ExportCsv(Catalog* catalog, const std::string& table_name,
                         const std::string& path,
                         const CsvOptions& options = {});

}  // namespace rfv

#endif  // RFVIEW_DB_CSV_H_
