#ifndef RFVIEW_DB_RESULT_SET_H_
#define RFVIEW_DB_RESULT_SET_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/trace.h"
#include "exec/executor.h"

namespace rfv {

/// The outcome of executing one SQL statement: rows + schema for
/// SELECTs, an affected-row count for DML/DDL, plus rewrite provenance
/// when the view rewriter answered the query from a materialized view.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)), is_query_(true) {}

  static ResultSet ForDml(int64_t affected) {
    ResultSet rs;
    rs.affected_ = affected;
    return rs;
  }

  bool is_query() const { return is_query_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  int64_t affected() const { return affected_; }

  const Value& at(size_t row, size_t column) const {
    return rows_[row][column];
  }

  /// Column index by (unqualified) name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Rewrite provenance (empty when the query ran against base data).
  const std::string& rewrite_method() const { return rewrite_method_; }
  const std::string& rewrite_view() const { return rewrite_view_; }
  const std::string& rewritten_sql() const { return rewritten_sql_; }
  void SetRewriteInfo(std::string method, std::string view, std::string sql) {
    rewrite_method_ = std::move(method);
    rewrite_view_ = std::move(view);
    rewritten_sql_ = std::move(sql);
  }

  /// Per-operator execution metrics of the physical plan that produced
  /// this result (empty for DML/DDL and results built without a plan).
  /// Entries are in pre-order; entry 0 is the plan root.
  const std::vector<OperatorMetricsEntry>& metrics() const {
    return metrics_;
  }
  void SetMetrics(std::vector<OperatorMetricsEntry> metrics) {
    metrics_ = std::move(metrics);
  }

  /// Indented one-line-per-operator rendering of metrics() (empty
  /// string when no metrics were recorded).
  std::string MetricsToString() const { return FormatMetricsReport(metrics_); }

  /// Per-instance plan tree with metrics annotations (EXPLAIN ANALYZE
  /// view; repeated operators such as both scans of a self-join keep
  /// their own rows).
  std::string MetricsTreeToString() const {
    return FormatMetricsTree(metrics_);
  }

  /// Wall time of each query phase (parse, bind, plan, rewrite,
  /// execute), in execution order. Empty when the statement bypassed a
  /// phase (DML has no plan/rewrite) or predates instrumentation.
  const std::vector<std::pair<std::string, int64_t>>& phase_ns() const {
    return phase_ns_;
  }
  void SetPhaseNs(std::vector<std::pair<std::string, int64_t>> phases) {
    phase_ns_ = std::move(phases);
  }
  void AddPhaseNs(std::string phase, int64_t ns) {
    phase_ns_.emplace_back(std::move(phase), ns);
  }
  /// One-line `phases: parse=0.1ms bind=...` summary (empty when none).
  std::string PhasesToString() const;

  /// The query-lifecycle trace recorded while producing this result
  /// (null unless Database::Options::enable_tracing was set).
  const std::shared_ptr<const QueryTrace>& trace() const { return trace_; }
  void SetTrace(std::shared_ptr<const QueryTrace> trace) {
    trace_ = std::move(trace);
  }
  /// Chrome trace-event JSON of trace() ("" when not traced).
  std::string TraceJson() const {
    return trace_ == nullptr ? "" : trace_->ToChromeJson();
  }

  /// ASCII table rendering (examples / debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  bool is_query_ = false;
  int64_t affected_ = -1;
  std::string rewrite_method_;
  std::string rewrite_view_;
  std::string rewritten_sql_;
  std::vector<OperatorMetricsEntry> metrics_;
  std::vector<std::pair<std::string, int64_t>> phase_ns_;
  std::shared_ptr<const QueryTrace> trace_;
};

}  // namespace rfv

#endif  // RFVIEW_DB_RESULT_SET_H_
