#ifndef RFVIEW_DB_RESULT_SET_H_
#define RFVIEW_DB_RESULT_SET_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "exec/executor.h"

namespace rfv {

/// The outcome of executing one SQL statement: rows + schema for
/// SELECTs, an affected-row count for DML/DDL, plus rewrite provenance
/// when the view rewriter answered the query from a materialized view.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)), is_query_(true) {}

  static ResultSet ForDml(int64_t affected) {
    ResultSet rs;
    rs.affected_ = affected;
    return rs;
  }

  bool is_query() const { return is_query_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  int64_t affected() const { return affected_; }

  const Value& at(size_t row, size_t column) const {
    return rows_[row][column];
  }

  /// Column index by (unqualified) name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Rewrite provenance (empty when the query ran against base data).
  const std::string& rewrite_method() const { return rewrite_method_; }
  const std::string& rewritten_sql() const { return rewritten_sql_; }
  void SetRewriteInfo(std::string method, std::string sql) {
    rewrite_method_ = std::move(method);
    rewritten_sql_ = std::move(sql);
  }

  /// Per-operator execution metrics of the physical plan that produced
  /// this result (empty for DML/DDL and results built without a plan).
  /// Entries are in pre-order; entry 0 is the plan root.
  const std::vector<OperatorMetricsEntry>& metrics() const {
    return metrics_;
  }
  void SetMetrics(std::vector<OperatorMetricsEntry> metrics) {
    metrics_ = std::move(metrics);
  }

  /// Indented one-line-per-operator rendering of metrics() (empty
  /// string when no metrics were recorded).
  std::string MetricsToString() const { return FormatMetricsReport(metrics_); }

  /// ASCII table rendering (examples / debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  bool is_query_ = false;
  int64_t affected_ = -1;
  std::string rewrite_method_;
  std::string rewritten_sql_;
  std::vector<OperatorMetricsEntry> metrics_;
};

}  // namespace rfv

#endif  // RFVIEW_DB_RESULT_SET_H_
