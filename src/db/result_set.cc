#include "db/result_set.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/str_util.h"

namespace rfv {

std::string ResultSet::PhasesToString() const {
  if (phase_ns_.empty()) return "";
  std::string out = "phases:";
  for (const auto& [phase, ns] : phase_ns_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", phase.c_str(),
                  static_cast<double>(ns) / 1e6);
    out += buf;
  }
  return out;
}

int ResultSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.NumColumns(); ++i) {
    if (EqualsIgnoreCase(schema_.column(i).name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string ResultSet::ToString(size_t max_rows) const {
  if (!is_query_) {
    return "(" + std::to_string(affected_) + " rows affected)";
  }
  std::ostringstream os;
  std::vector<size_t> widths(schema_.NumColumns());
  std::vector<std::vector<std::string>> cells;
  const size_t shown = std::min(max_rows, rows_.size());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      // Strings render raw (Value::ToString quotes them for debugging).
      const Value& v = rows_[r][c];
      std::string cell = v.type() == DataType::kString ? v.AsString()
                                                       : v.ToString();
      widths[c] = std::max(widths[c], cell.size());
      row_cells.push_back(std::move(cell));
    }
    cells.push_back(std::move(row_cells));
  }
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    os << (c == 0 ? "" : " | ");
    std::string name = schema_.column(c).name;
    name.resize(widths[c], ' ');
    os << name;
  }
  os << "\n";
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    os << (c == 0 ? "" : "-+-") << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row_cells : cells) {
    for (size_t c = 0; c < row_cells.size(); ++c) {
      std::string cell = row_cells[c];
      if (c + 1 < row_cells.size()) cell.resize(widths[c], ' ');
      os << (c == 0 ? "" : " | ") << cell;
    }
    os << "\n";
  }
  if (rows_.size() > shown) {
    os << "... (" << rows_.size() << " rows total)\n";
  }
  return os.str();
}

}  // namespace rfv
