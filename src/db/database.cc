#include "db/database.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "expr/eval.h"
#include "parser/parser.h"
#include "plan/binder.h"
#include "plan/cardinality.h"
#include "plan/planner.h"

namespace rfv {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// The workload event the innermost Execute() on this thread is
/// building; ExecuteSelect fills its rewrite candidates through this.
/// Thread-local so concurrent sessions never share an event.
thread_local QueryEvent* tls_active_event = nullptr;

int64_t ElapsedNs(SteadyClock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now() - since)
      .count();
}

/// Wraps multi-line explain text into a one-column result, one row per
/// line (readable in the shell's table rendering).
ResultSet TextToResultSet(const std::string& text) {
  Schema schema;
  schema.AddColumn(ColumnDef("plan", DataType::kString));
  std::vector<Row> rows;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? std::string::npos
                                                    : end - start);
    if (!line.empty()) rows.push_back(Row({Value::String(line)}));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return ResultSet(std::move(schema), std::move(rows));
}

/// Renders the rewriter's decision record for plain EXPLAIN: the
/// outcome line, one line per (view, method) alternative with its cost
/// estimate (or not-derivable reason), and the recompute baseline.
std::string FormatRewriteDecision(const RewriteDecision& decision) {
  std::string text = "Rewrite: " + decision.summary + "\n";
  for (const CandidateVerdict& v : decision.verdicts) {
    text += "  candidate " + v.view_name;
    if (v.derivable) {
      text += " via " + std::string(DerivationMethodName(v.method));
      if (!v.detail.empty()) text += ": " + v.detail;
      if (v.chosen) text += " (chosen)";
    } else {
      text += ": " + v.detail;
    }
    text += "\n";
  }
  if (decision.baseline.has_value()) {
    text += "  baseline recompute: " + decision.baseline->Summary() + "\n";
  }
  return text;
}

bool IsConstExpr(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) return false;
  for (const auto& child : e.children) {
    if (!IsConstExpr(*child)) return false;
  }
  return true;
}

/// How UPDATE/DELETE locate their target rows: an ordered-index probe
/// when a sargable conjunct (col = const, col <op> const, col BETWEEN
/// const AND const) covers an indexed column, else a sequential scan.
/// Index candidates are a superset for range probes; the caller must
/// re-check the full predicate on each candidate row.
struct DmlScanChoice {
  bool used_index = false;
  std::string description = "seq scan";
  std::vector<size_t> candidates;  ///< sorted row ids; only when used_index
};

Result<DmlScanChoice> ChooseDmlScan(Table* table, const Expr* where) {
  DmlScanChoice choice;
  if (where == nullptr) return choice;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(where->Clone(), &conjuncts);
  const Row empty_row;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kBinary) {
      BinaryOp op = c->binary_op;
      if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLe &&
          op != BinaryOp::kGt && op != BinaryOp::kGe) {
        continue;
      }
      const Expr* col = nullptr;
      const Expr* constant = nullptr;
      if (c->children[0]->kind == ExprKind::kColumnRef &&
          IsConstExpr(*c->children[1])) {
        col = c->children[0].get();
        constant = c->children[1].get();
      } else if (c->children[1]->kind == ExprKind::kColumnRef &&
                 IsConstExpr(*c->children[0])) {
        col = c->children[1].get();
        constant = c->children[0].get();
        // Mirror the comparison so `op` reads as <col> op <const>.
        switch (op) {
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        continue;
      }
      OrderedIndex* index = table->GetIndexOnColumn(col->column_index);
      if (index == nullptr) continue;
      Value key;
      RFV_ASSIGN_OR_RETURN(key, Evaluator::Eval(*constant, empty_row));
      if (op == BinaryOp::kEq) {
        choice.candidates = index->Lookup(key);
      } else if (op == BinaryOp::kLt || op == BinaryOp::kLe) {
        // Inclusive range; strict bounds over-approximate and rely on
        // the predicate re-check.
        choice.candidates =
            index->LookupRange(Value::Null(), false, key, true);
      } else {
        choice.candidates =
            index->LookupRange(key, true, Value::Null(), false);
      }
      choice.used_index = true;
      choice.description =
          "index probe " + index->name() + " on " + c->ToString();
      std::sort(choice.candidates.begin(), choice.candidates.end());
      return choice;
    }
    if (c->kind == ExprKind::kBetween &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        IsConstExpr(*c->children[1]) && IsConstExpr(*c->children[2])) {
      OrderedIndex* index =
          table->GetIndexOnColumn(c->children[0]->column_index);
      if (index == nullptr) continue;
      Value lo;
      RFV_ASSIGN_OR_RETURN(lo, Evaluator::Eval(*c->children[1], empty_row));
      Value hi;
      RFV_ASSIGN_OR_RETURN(hi, Evaluator::Eval(*c->children[2], empty_row));
      choice.used_index = true;
      choice.candidates = index->LookupRange(lo, true, hi, true);
      choice.description =
          "index probe " + index->name() + " on " + c->ToString();
      std::sort(choice.candidates.begin(), choice.candidates.end());
      return choice;
    }
  }
  return choice;
}

const char* StatementKindName(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect: return "select";
    case Statement::Kind::kCreateTable: return "create_table";
    case Statement::Kind::kCreateIndex: return "create_index";
    case Statement::Kind::kInsert: return "insert";
    case Statement::Kind::kUpdate: return "update";
    case Statement::Kind::kDelete: return "delete";
    case Statement::Kind::kCreateView: return "create_view";
    case Statement::Kind::kDropTable: return "drop_table";
    case Statement::Kind::kAnalyze: return "analyze";
    case Statement::Kind::kExplain: return "explain";
  }
  return "unknown";
}

/// Finalizes the workload record of one Execute call from its result.
void FillEventFromResult(const ResultSet& rs, QueryEvent* event) {
  event->phase_ns = rs.phase_ns();
  event->rows_out = rs.is_query() ? static_cast<int64_t>(rs.NumRows())
                                  : std::max<int64_t>(rs.affected(), 0);
  for (const OperatorMetricsEntry& entry : rs.metrics()) {
    if (entry.name == "scan") event->rows_in += entry.metrics.rows_out;
    QueryEventOperator op;
    op.op = entry.name;
    op.depth = entry.depth;
    op.rows_in = entry.rows_in;
    op.rows_out = entry.metrics.rows_out;
    op.next_calls = entry.metrics.next_calls;
    op.batches_out = entry.metrics.batches_out;
    op.open_ms = static_cast<double>(entry.metrics.open_ns) / 1e6;
    op.next_ms = static_cast<double>(entry.metrics.next_ns) / 1e6;
    op.peak_buffered_rows = entry.metrics.peak_buffered_rows;
    event->operators.push_back(std::move(op));
  }
  if (!rs.rewrite_method().empty()) {
    event->rewrite = rs.rewrite_method();
    event->rewrite_view = rs.rewrite_view();
  }
}

}  // namespace

std::string Database::MetricsText() {
  return MetricsRegistry::Global().ToPrometheusText();
}

Status Database::ExportWorkload(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << query_log_.ToJsonl();
  out.close();
  if (!out) return Status::ExecutionError("failed writing " + path);
  return Status::OK();
}

Result<ResultSet> Database::Execute(const std::string& sql) {
  return Execute(sql, options_);
}

Result<ResultSet> Database::Execute(const std::string& sql,
                                    const Options& options) {
  static Counter* queries = MetricsRegistry::Global().GetCounter(
      "rfv_queries_executed_total", {},
      "SQL statements submitted through Database::Execute");
  static Counter* failures = MetricsRegistry::Global().GetCounter(
      "rfv_queries_failed_total", {},
      "SQL statements that returned a non-OK status");
  static Histogram* latency = MetricsRegistry::Global().GetHistogram(
      "rfv_query_duration_seconds", {},
      "End-to-end Database::Execute latency");

  // Queue for an admission slot before any work (including parsing):
  // the cap bounds total execution concurrency, and the latency clock
  // deliberately starts after admission so tail latencies measure
  // execution, not queueing (queueing has its own histogram).
  AdmissionController::Ticket ticket = admission_.Admit();

  const SteadyClock::time_point started = SteadyClock::now();
  std::shared_ptr<QueryTrace> trace;
  std::optional<ScopedTraceAttach> attach;
  if (options.enable_tracing) {
    trace = Tracer::Global().StartQuery();
    attach.emplace(trace.get());
  }

  QueryEvent event;
  event.query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  event.sql = sql;
  event.fingerprint = NormalizeFingerprint(sql);
  QueryEvent* const previous_event = tls_active_event;
  tls_active_event = &event;

  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    TraceSpan query_span("query");
    if (query_span.active()) query_span.AddArg("sql", sql);
    Statement stmt;
    int64_t parse_ns = 0;
    {
      TraceSpan parse_span("parse");
      const SteadyClock::time_point parse_start = SteadyClock::now();
      RFV_ASSIGN_OR_RETURN(stmt, Parser::ParseStatement(sql));
      parse_ns = ElapsedNs(parse_start);
    }
    event.kind = StatementKindName(stmt);
    Result<ResultSet> r = ExecuteStatement(stmt, options);
    if (r.ok()) {
      std::vector<std::pair<std::string, int64_t>> phases;
      phases.emplace_back("parse", parse_ns);
      for (const auto& phase : r->phase_ns()) phases.push_back(phase);
      r->SetPhaseNs(std::move(phases));
    }
    return r;
  }();
  tls_active_event = previous_event;

  queries->Increment();
  if (!result.ok()) {
    failures->Increment();
    RFV_LOG(kDebug) << "query failed: " << result.status().ToString();
  }
  latency->Observe(static_cast<double>(ElapsedNs(started)) / 1e9);
  if (trace != nullptr) {
    attach.reset();  // detach before the trace becomes shared/const
    if (result.ok()) result->SetTrace(trace);
    Tracer::Global().Retire(std::move(trace));
  }

  event.duration_ns = ElapsedNs(started);
  if (result.ok()) {
    event.status = "ok";
    FillEventFromResult(*result, &event);
  } else {
    if (event.kind.empty()) event.kind = "error";
    event.status = StatusCodeName(result.status().code());
    event.error = result.status().message();
  }
  query_log_.Append(std::move(event));
  return result;
}

Status Database::ExecuteScript(const std::string& sql) {
  std::vector<Statement> statements;
  RFV_ASSIGN_OR_RETURN(statements, Parser::ParseScript(sql));
  for (const Statement& stmt : statements) {
    Result<ResultSet> r = ExecuteStatement(stmt, options_);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Result<std::string> Database::Explain(const std::string& sql) {
  Statement stmt;
  RFV_ASSIGN_OR_RETURN(stmt, Parser::ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::NotSupported("EXPLAIN supports SELECT statements only");
  }
  Binder binder(&catalog_);
  LogicalPlanPtr plan;
  RFV_ASSIGN_OR_RETURN(plan, binder.BindSelect(*stmt.select));
  plan = OptimizePlan(std::move(plan));
  EstimateCardinality(plan.get());
  return plan->ToString();
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt,
                                             const Options& options) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select, /*allow_rewrite=*/true, options);
    case Statement::Kind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case Statement::Kind::kDelete:
      return ExecuteDelete(*stmt.del);
    case Statement::Kind::kCreateView:
      return ExecuteCreateView(*stmt.create_view, options);
    case Statement::Kind::kDropTable:
      return ExecuteDropTable(*stmt.drop_table);
    case Statement::Kind::kAnalyze:
      return ExecuteAnalyze(*stmt.analyze);
    case Statement::Kind::kExplain:
      return ExecuteExplain(stmt, options);
  }
  return Status::Internal("unreachable statement kind");
}

Result<ResultSet> Database::ExecuteExplain(const Statement& stmt,
                                           const Options& options) {
  if (stmt.explained_kind != Statement::Kind::kSelect) {
    std::string text;
    RFV_ASSIGN_OR_RETURN(text, ExplainDml(stmt));
    return TextToResultSet(text);
  }
  if (stmt.explain_analyze) {
    // EXPLAIN ANALYZE SELECT: execute for real, then render phase
    // timings, the rewrite decision, and the measured operator tree.
    TraceSpan span("explain.analyze");
    ResultSet executed;
    RFV_ASSIGN_OR_RETURN(
        executed,
        ExecuteSelect(*stmt.select, /*allow_rewrite=*/true, options));
    std::string text = "EXPLAIN ANALYZE (" +
                       std::to_string(executed.NumRows()) + " rows)\n";
    const std::string phases = executed.PhasesToString();
    if (!phases.empty()) text += phases + "\n";
    if (!executed.rewrite_method().empty()) {
      text += "rewrite: " + executed.rewrite_method() + " using view " +
              executed.rewrite_view() + "\n";
    } else {
      text += "rewrite: none\n";
    }
    text += executed.MetricsTreeToString();
    ResultSet rs = TextToResultSet(text);
    rs.SetMetrics(executed.metrics());
    rs.SetPhaseNs(executed.phase_ns());
    rs.SetRewriteInfo(executed.rewrite_method(), executed.rewrite_view(),
                      executed.rewritten_sql());
    return rs;
  }
  // Plain EXPLAIN SELECT: the optimized logical plan — preceded by the
  // rewrite decision whenever the statement was a recognizable window
  // query, including when the verdict was "no rewrite" (the
  // per-candidate record prints without tracing enabled).
  std::string text;
  if (options.enable_view_rewrite) {
    RewriteOptions rewrite_options;
    rewrite_options.variant = options.rewrite_variant;
    rewrite_options.force_method = options.force_method;
    rewrite_options.use_cost_model = options.use_cost_model;
    rewrite_options.vector_exec = options.exec.use_vectorized_execution;
    RewriteDecision decision;
    std::optional<RewriteResult> rewrite;
    RFV_ASSIGN_OR_RETURN(rewrite, rewriter_.TryRewrite(*stmt.select,
                                                       rewrite_options,
                                                       &decision));
    if (!decision.summary.empty()) {
      text += FormatRewriteDecision(decision);
    } else if (rewrite.has_value()) {
      // Forced-method / static-order paths fill no decision record.
      text += "Rewrite: " +
              std::string(DerivationMethodName(rewrite->choice.method)) +
              " using view " + rewrite->choice.view->view_name + "\n";
    }
    if (rewrite.has_value()) text += rewrite->sql + "\n";
  }
  Binder binder(&catalog_);
  LogicalPlanPtr plan;
  RFV_ASSIGN_OR_RETURN(plan, binder.BindSelect(*stmt.select));
  plan = OptimizePlan(std::move(plan));
  EstimateCardinality(plan.get());
  text += plan->ToString();
  return TextToResultSet(text);
}

Result<std::string> Database::ExplainDml(const Statement& stmt) {
  std::string text;
  switch (stmt.explained_kind) {
    case Statement::Kind::kInsert: {
      const InsertStmt& ins = *stmt.insert;
      Result<Table*> table = catalog_.GetTable(ins.table_name);
      if (!table.ok()) return table.status();
      text = "insert into " + ToLower(ins.table_name) + "\n  rows: " +
             std::to_string(ins.rows.size()) + "\n  columns: ";
      if (ins.columns.empty()) {
        text += "(positional)";
      } else {
        for (size_t i = 0; i < ins.columns.size(); ++i) {
          text += (i == 0 ? "" : ", ") + ToLower(ins.columns[i]);
        }
      }
      text += "\n";
      break;
    }
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete: {
      const bool is_update = stmt.explained_kind == Statement::Kind::kUpdate;
      const std::string& table_name =
          is_update ? stmt.update->table_name : stmt.del->table_name;
      const AstExpr* where_ast =
          is_update ? stmt.update->where.get() : stmt.del->where.get();
      Result<Table*> table_result = catalog_.GetTable(table_name);
      if (!table_result.ok()) return table_result.status();
      Table* table = *table_result;
      const Schema schema =
          table->schema().WithQualifier(ToLower(table_name));
      Binder binder(&catalog_);
      ExprPtr where;
      if (where_ast != nullptr) {
        RFV_ASSIGN_OR_RETURN(where, binder.BindScalar(*where_ast, schema));
      }
      text = (is_update ? "update " : "delete from ") + ToLower(table_name) +
             "\n";
      text += "  predicate: " +
              (where == nullptr ? std::string("none") : where->ToString()) +
              "\n";
      DmlScanChoice scan;
      RFV_ASSIGN_OR_RETURN(scan, ChooseDmlScan(table, where.get()));
      text += "  scan: " + scan.description + "\n";
      if (is_update) {
        text += "  assignments:";
        for (const auto& [name, expr] : stmt.update->assignments) {
          text += " " + ToLower(name) + "=" + expr->ToString();
        }
        text += "\n";
      }
      break;
    }
    default:
      return Status::NotSupported(
          "EXPLAIN supports SELECT, INSERT, UPDATE and DELETE statements");
  }
  if (stmt.explain_analyze) {
    // ANALYZE on DML: execute for real and report the affected count.
    ResultSet executed;
    switch (stmt.explained_kind) {
      case Statement::Kind::kInsert:
        RFV_ASSIGN_OR_RETURN(executed, ExecuteInsert(*stmt.insert));
        break;
      case Statement::Kind::kUpdate:
        RFV_ASSIGN_OR_RETURN(executed, ExecuteUpdate(*stmt.update));
        break;
      default:
        RFV_ASSIGN_OR_RETURN(executed, ExecuteDelete(*stmt.del));
        break;
    }
    text += "  actual: " + std::to_string(executed.affected()) +
            " rows affected\n";
  }
  return text;
}

Result<ResultSet> Database::ExecuteSelect(const SelectStmt& stmt,
                                          bool allow_rewrite,
                                          const Options& options) {
  if (allow_rewrite && options.enable_view_rewrite) {
    RewriteOptions rewrite_options;
    rewrite_options.variant = options.rewrite_variant;
    rewrite_options.force_method = options.force_method;
    rewrite_options.use_cost_model = options.use_cost_model;
    rewrite_options.vector_exec = options.exec.use_vectorized_execution;
    const SteadyClock::time_point rewrite_start = SteadyClock::now();
    RewriteDecision decision;
    std::optional<RewriteResult> rewrite;
    RFV_ASSIGN_OR_RETURN(
        rewrite, rewriter_.TryRewrite(stmt, rewrite_options, &decision));
    const int64_t rewrite_ns = ElapsedNs(rewrite_start);
    // Record every (view, method) verdict into the workload event — the
    // advisor's evidence of what the rewriter considered and why. Only
    // the outermost recognizable query fills it (EXPLAIN ANALYZE and
    // CREATE VIEW reach here through the same active event).
    if (tls_active_event != nullptr && tls_active_event->candidates.empty()) {
      for (const CandidateVerdict& v : decision.verdicts) {
        QueryEventCandidate c;
        c.view = v.view_name;
        c.derivable = v.derivable;
        if (v.derivable) c.method = DerivationMethodName(v.method);
        c.chosen = v.chosen;
        if (v.cost.has_value()) c.cost = v.cost->total;
        c.detail = v.detail;
        if (v.chosen && v.cost.has_value()) {
          tls_active_event->cost_estimate = v.cost->total;
        }
        tls_active_event->candidates.push_back(std::move(c));
      }
    }
    if (rewrite.has_value()) {
      Statement rewritten;
      RFV_ASSIGN_OR_RETURN(rewritten, Parser::ParseStatement(rewrite->sql));
      if (rewritten.kind != Statement::Kind::kSelect) {
        return Status::Internal("rewriter produced a non-SELECT");
      }
      ResultSet rs;
      RFV_ASSIGN_OR_RETURN(
          rs,
          ExecuteSelect(*rewritten.select, /*allow_rewrite=*/false, options));
      rs.SetRewriteInfo(DerivationMethodName(rewrite->choice.method),
                        rewrite->choice.view->view_name, rewrite->sql);
      // The rewrite decision happened before the inner phases.
      std::vector<std::pair<std::string, int64_t>> phases;
      phases.emplace_back("rewrite", rewrite_ns);
      for (const auto& phase : rs.phase_ns()) phases.push_back(phase);
      rs.SetPhaseNs(std::move(phases));
      return rs;
    }
    // Fall through to the base-data path, keeping the miss's cost
    // visible in the phase report.
    Result<ResultSet> rs =
        ExecuteSelect(stmt, /*allow_rewrite=*/false, options);
    if (rs.ok()) {
      std::vector<std::pair<std::string, int64_t>> phases;
      phases.emplace_back("rewrite", rewrite_ns);
      for (const auto& phase : rs->phase_ns()) phases.push_back(phase);
      rs->SetPhaseNs(std::move(phases));
    }
    return rs;
  }
  Binder binder(&catalog_);
  LogicalPlanPtr plan;
  const SteadyClock::time_point bind_start = SteadyClock::now();
  {
    TraceSpan span("bind");
    RFV_ASSIGN_OR_RETURN(plan, binder.BindSelect(stmt));
  }
  const int64_t bind_ns = ElapsedNs(bind_start);
  const SteadyClock::time_point plan_start = SteadyClock::now();
  PhysicalOperatorPtr root;
  {
    TraceSpan span("plan");
    plan = OptimizePlan(std::move(plan));
    // Annotate estimates before lowering: BuildPhysicalPlan stamps each
    // node's est_rows onto its operator for EXPLAIN ANALYZE's
    // estimated-vs-actual columns.
    EstimateCardinality(plan.get());
    // Build and run the physical plan here (rather than through
    // ExecutePlan) so the operator tree survives long enough to harvest
    // its per-operator metrics into the result.
    RFV_ASSIGN_OR_RETURN(root, BuildPhysicalPlan(*plan, options.exec));
  }
  const int64_t plan_ns = ElapsedNs(plan_start);
  const SteadyClock::time_point exec_start = SteadyClock::now();
  std::vector<Row> rows;
  RFV_ASSIGN_OR_RETURN(
      rows, ExecuteToVector(root.get(), options.exec.use_batch_execution));
  const int64_t exec_ns = ElapsedNs(exec_start);
  ResultSet rs(plan->schema, std::move(rows));
  rs.SetMetrics(CollectMetrics(*root));
  rs.SetPhaseNs({{"bind", bind_ns}, {"plan", plan_ns}, {"execute", exec_ns}});
  return rs;
}

Result<ResultSet> Database::ExecuteCreateTable(const CreateTableStmt& stmt) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  Schema schema;
  std::vector<std::string> pk_columns;
  for (const ColumnSpec& col : stmt.columns) {
    schema.AddColumn(ColumnDef(ToLower(col.name), col.type));
    if (col.primary_key) pk_columns.push_back(ToLower(col.name));
  }
  Table* table = nullptr;
  {
    Result<Table*> r = catalog_.CreateTable(stmt.table_name, std::move(schema));
    if (!r.ok()) return r.status();
    table = *r;
  }
  for (const std::string& pk : pk_columns) {
    RFV_RETURN_IF_ERROR(
        table->CreateIndex(ToLower(stmt.table_name) + "_pk_" + pk, pk));
  }
  return ResultSet::ForDml(0);
}

Result<ResultSet> Database::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (catalog_.IsVirtualName(stmt.table_name)) {
    return Status::InvalidArgument("system view " + ToLower(stmt.table_name) +
                                   " is read-only");
  }
  Result<Table*> table = catalog_.GetTable(stmt.table_name);
  if (!table.ok()) return table.status();
  RFV_RETURN_IF_ERROR((*table)->CreateIndex(ToLower(stmt.index_name),
                                            ToLower(stmt.column_name)));
  return ResultSet::ForDml(0);
}

Result<ResultSet> Database::ExecuteInsert(const InsertStmt& stmt) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (catalog_.IsVirtualName(stmt.table_name)) {
    return Status::InvalidArgument("system view " + ToLower(stmt.table_name) +
                                   " is read-only");
  }
  Result<Table*> table_result = catalog_.GetTable(stmt.table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;
  const Schema& schema = table->schema();

  // Resolve the column list to positions (positional when omitted).
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      Result<size_t> c = schema.FindColumn("", name);
      if (!c.ok()) return c.status();
      targets.push_back(*c);
    }
  }

  Binder binder(&catalog_);
  const Schema empty_schema;
  const Row empty_row;
  int64_t inserted = 0;
  // One snapshot commit for the whole statement: concurrent readers see
  // either none or all of a multi-row INSERT.
  Table::WriteGuard guard(table);
  for (const std::vector<AstExprPtr>& row_exprs : stmt.rows) {
    if (row_exprs.size() != targets.size()) {
      return Status::InvalidArgument(
          "INSERT value count does not match column count");
    }
    std::vector<Value> values(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < row_exprs.size(); ++i) {
      ExprPtr bound;
      RFV_ASSIGN_OR_RETURN(bound,
                           binder.BindScalar(*row_exprs[i], empty_schema));
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*bound, empty_row));
      values[targets[i]] = std::move(v);
    }
    RFV_RETURN_IF_ERROR(table->Insert(Row(std::move(values))));
    ++inserted;
  }
  return ResultSet::ForDml(inserted);
}

Result<ResultSet> Database::ExecuteUpdate(const UpdateStmt& stmt) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (catalog_.IsVirtualName(stmt.table_name)) {
    return Status::InvalidArgument("system view " + ToLower(stmt.table_name) +
                                   " is read-only");
  }
  Result<Table*> table_result = catalog_.GetTable(stmt.table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;
  const Schema schema =
      table->schema().WithQualifier(ToLower(stmt.table_name));

  Binder binder(&catalog_);
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [name, expr] : stmt.assignments) {
    Result<size_t> c = table->schema().FindColumn("", name);
    if (!c.ok()) return c.status();
    ExprPtr bound;
    RFV_ASSIGN_OR_RETURN(bound, binder.BindScalar(*expr, schema));
    assignments.emplace_back(*c, std::move(bound));
  }
  ExprPtr where;
  if (stmt.where != nullptr) {
    RFV_ASSIGN_OR_RETURN(where, binder.BindScalar(*stmt.where, schema));
  }

  // Narrow the scan through an ordered index when a sargable conjunct
  // allows it; candidates still get the full predicate re-checked.
  DmlScanChoice scan;
  RFV_ASSIGN_OR_RETURN(scan, ChooseDmlScan(table, where.get()));

  // Two-phase: evaluate first, apply second (self-referencing updates).
  std::vector<std::pair<size_t, Row>> updates;
  const size_t total =
      scan.used_index ? scan.candidates.size() : table->NumRows();
  for (size_t i = 0; i < total; ++i) {
    const size_t r = scan.used_index ? scan.candidates[i] : i;
    const Row& row = table->row(r);
    if (where != nullptr) {
      bool keep = false;
      RFV_ASSIGN_OR_RETURN(keep, Evaluator::EvalPredicate(*where, row));
      if (!keep) continue;
    }
    Row updated = row;
    for (const auto& [column, expr] : assignments) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*expr, row));
      updated[column] = std::move(v);
    }
    updates.emplace_back(r, std::move(updated));
  }
  // Statement-granular commit: a reader never sees a half-applied
  // multi-row UPDATE.
  Table::WriteGuard guard(table);
  for (auto& [r, row] : updates) {
    RFV_RETURN_IF_ERROR(table->UpdateRow(r, std::move(row)));
  }
  return ResultSet::ForDml(static_cast<int64_t>(updates.size()));
}

Result<ResultSet> Database::ExecuteDelete(const DeleteStmt& stmt) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (catalog_.IsVirtualName(stmt.table_name)) {
    return Status::InvalidArgument("system view " + ToLower(stmt.table_name) +
                                   " is read-only");
  }
  Result<Table*> table_result = catalog_.GetTable(stmt.table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;
  const Schema schema =
      table->schema().WithQualifier(ToLower(stmt.table_name));

  Binder binder(&catalog_);
  ExprPtr where;
  if (stmt.where != nullptr) {
    RFV_ASSIGN_OR_RETURN(where, binder.BindScalar(*stmt.where, schema));
  }
  DmlScanChoice scan;
  RFV_ASSIGN_OR_RETURN(scan, ChooseDmlScan(table, where.get()));
  std::vector<size_t> victims;
  const size_t total =
      scan.used_index ? scan.candidates.size() : table->NumRows();
  for (size_t i = 0; i < total; ++i) {
    const size_t r = scan.used_index ? scan.candidates[i] : i;
    if (where != nullptr) {
      bool hit = false;
      RFV_ASSIGN_OR_RETURN(hit,
                           Evaluator::EvalPredicate(*where, table->row(r)));
      if (!hit) continue;
    }
    victims.push_back(r);
  }
  // Delete from the back so earlier row ids stay valid; one snapshot
  // commit for the whole statement.
  Table::WriteGuard guard(table);
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    RFV_RETURN_IF_ERROR(table->DeleteRow(*it));
  }
  return ResultSet::ForDml(static_cast<int64_t>(victims.size()));
}

Result<ResultSet> Database::ExecuteCreateView(const CreateViewStmt& stmt,
                                              const Options& options) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (!stmt.materialized) {
    return Status::NotSupported(
        "only MATERIALIZED views are supported (the paper's subject)");
  }
  // A sequence-view-shaped SELECT becomes a registered sequence view
  // with complete header/trailer; anything else materializes as a plain
  // snapshot table.
  bool wants_order = false;
  const std::optional<SeqQuery> seq_query =
      Rewriter::RecognizeSimpleWindowQuery(*stmt.query, &wants_order);
  if (seq_query.has_value() && !seq_query->is_avg) {
    SequenceViewDef def;
    def.view_name = ToLower(stmt.view_name);
    def.base_table = seq_query->base_table;
    def.value_column = seq_query->value_column;
    def.order_column = seq_query->order_column;
    def.partition_columns = seq_query->partition_columns;
    def.fn = seq_query->fn;
    def.window = seq_query->window;
    def.indexed = true;
    Result<const SequenceViewDef*> r = views_.CreateSequenceView(def);
    if (!r.ok()) return r.status();
    Result<Table*> content = catalog_.GetTable(def.view_name);
    if (!content.ok()) return content.status();
    return ResultSet::ForDml(static_cast<int64_t>((*content)->NumRows()));
  }

  // Generic materialization: run the query, snapshot the result.
  ResultSet rs;
  RFV_ASSIGN_OR_RETURN(
      rs, ExecuteSelect(*stmt.query, /*allow_rewrite=*/true, options));
  Schema schema;
  for (size_t i = 0; i < rs.schema().NumColumns(); ++i) {
    const ColumnDef& col = rs.schema().column(i);
    schema.AddColumn(ColumnDef(ToLower(col.name), col.type));
  }
  Table* table = nullptr;
  {
    Result<Table*> r = catalog_.CreateTable(stmt.view_name, std::move(schema));
    if (!r.ok()) return r.status();
    table = *r;
  }
  std::vector<Row> rows = rs.rows();
  // The new table is visible in the catalog from CreateTable on; the
  // bracket keeps a reader that binds it mid-fill on the empty image
  // rather than a partial one.
  Table::WriteGuard guard(table);
  RFV_RETURN_IF_ERROR(table->InsertBatch(std::move(rows)));
  return ResultSet::ForDml(static_cast<int64_t>(table->NumRows()));
}

Result<ResultSet> Database::ExecuteAnalyze(const AnalyzeStmt& stmt) {
  // ANALYZE [table]: recompute full column statistics (distinct counts,
  // exact ranges) for one table or for every catalog table — including
  // materialized view content tables, which live in the same catalog.
  std::lock_guard<std::mutex> write_lock(write_mu_);
  TraceSpan span("analyze");
  static Counter* analyzes = MetricsRegistry::Global().GetCounter(
      "rfv_analyze_runs_total", {},
      "Tables analyzed through the ANALYZE statement");
  int64_t analyzed = 0;
  if (!stmt.table_name.empty()) {
    Result<Table*> table = catalog_.GetTable(stmt.table_name);
    if (!table.ok()) return table.status();
    (*table)->Analyze();
    ++analyzed;
  } else {
    for (const std::string& name : catalog_.TableNames()) {
      Result<Table*> table = catalog_.GetTable(name);
      if (!table.ok()) return table.status();
      (*table)->Analyze();
      ++analyzed;
    }
  }
  analyzes->Increment(analyzed);
  if (span.active()) span.AddArg("tables", std::to_string(analyzed));
  return ResultSet::ForDml(analyzed);
}

Result<ResultSet> Database::ExecuteDropTable(const DropTableStmt& stmt) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  if (views_.FindView(ToLower(stmt.table_name)) != nullptr) {
    RFV_RETURN_IF_ERROR(views_.DropView(stmt.table_name));
    return ResultSet::ForDml(0);
  }
  RFV_RETURN_IF_ERROR(catalog_.DropTable(stmt.table_name));
  return ResultSet::ForDml(0);
}

}  // namespace rfv
