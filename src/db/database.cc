#include "db/database.h"

#include <algorithm>

#include "common/str_util.h"
#include "expr/eval.h"
#include "parser/parser.h"
#include "plan/binder.h"
#include "plan/planner.h"

namespace rfv {

Result<ResultSet> Database::Execute(const std::string& sql) {
  Statement stmt;
  RFV_ASSIGN_OR_RETURN(stmt, Parser::ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Status Database::ExecuteScript(const std::string& sql) {
  std::vector<Statement> statements;
  RFV_ASSIGN_OR_RETURN(statements, Parser::ParseScript(sql));
  for (const Statement& stmt : statements) {
    Result<ResultSet> r = ExecuteStatement(stmt);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Result<std::string> Database::Explain(const std::string& sql) {
  Statement stmt;
  RFV_ASSIGN_OR_RETURN(stmt, Parser::ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::NotSupported("EXPLAIN supports SELECT statements only");
  }
  Binder binder(&catalog_);
  LogicalPlanPtr plan;
  RFV_ASSIGN_OR_RETURN(plan, binder.BindSelect(*stmt.select));
  plan = OptimizePlan(std::move(plan));
  return plan->ToString();
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select, /*allow_rewrite=*/true);
    case Statement::Kind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case Statement::Kind::kDelete:
      return ExecuteDelete(*stmt.del);
    case Statement::Kind::kCreateView:
      return ExecuteCreateView(*stmt.create_view);
    case Statement::Kind::kDropTable:
      return ExecuteDropTable(*stmt.drop_table);
    case Statement::Kind::kExplain: {
      // Render the optimized plan — and the rewrite decision, if the
      // view rewriter would answer the query from a materialized view.
      std::string text;
      if (options_.enable_view_rewrite) {
        RewriteOptions rewrite_options;
        rewrite_options.variant = options_.rewrite_variant;
        rewrite_options.force_method = options_.force_method;
        std::optional<RewriteResult> rewrite;
        RFV_ASSIGN_OR_RETURN(rewrite,
                             rewriter_.TryRewrite(*stmt.select,
                                                  rewrite_options));
        if (rewrite.has_value()) {
          text += "Rewrite: " +
                  std::string(DerivationMethodName(rewrite->choice.method)) +
                  " using view " + rewrite->choice.view->view_name + "\n" +
                  rewrite->sql + "\n";
        }
      }
      Binder binder(&catalog_);
      LogicalPlanPtr plan;
      RFV_ASSIGN_OR_RETURN(plan, binder.BindSelect(*stmt.select));
      plan = OptimizePlan(std::move(plan));
      text += plan->ToString();
      Schema schema;
      schema.AddColumn(ColumnDef("plan", DataType::kString));
      std::vector<Row> rows;
      // One row per line for readable shell output.
      size_t start = 0;
      while (start <= text.size()) {
        const size_t end = text.find('\n', start);
        const std::string line =
            text.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
        if (!line.empty()) rows.push_back(Row({Value::String(line)}));
        if (end == std::string::npos) break;
        start = end + 1;
      }
      return ResultSet(std::move(schema), std::move(rows));
    }
  }
  return Status::Internal("unreachable statement kind");
}

Result<ResultSet> Database::ExecuteSelect(const SelectStmt& stmt,
                                          bool allow_rewrite) {
  if (allow_rewrite && options_.enable_view_rewrite) {
    RewriteOptions rewrite_options;
    rewrite_options.variant = options_.rewrite_variant;
    rewrite_options.force_method = options_.force_method;
    std::optional<RewriteResult> rewrite;
    RFV_ASSIGN_OR_RETURN(rewrite,
                         rewriter_.TryRewrite(stmt, rewrite_options));
    if (rewrite.has_value()) {
      Statement rewritten;
      RFV_ASSIGN_OR_RETURN(rewritten, Parser::ParseStatement(rewrite->sql));
      if (rewritten.kind != Statement::Kind::kSelect) {
        return Status::Internal("rewriter produced a non-SELECT");
      }
      ResultSet rs;
      RFV_ASSIGN_OR_RETURN(
          rs, ExecuteSelect(*rewritten.select, /*allow_rewrite=*/false));
      rs.SetRewriteInfo(DerivationMethodName(rewrite->choice.method),
                        rewrite->sql);
      return rs;
    }
  }
  Binder binder(&catalog_);
  LogicalPlanPtr plan;
  RFV_ASSIGN_OR_RETURN(plan, binder.BindSelect(stmt));
  plan = OptimizePlan(std::move(plan));
  // Build and run the physical plan here (rather than through
  // ExecutePlan) so the operator tree survives long enough to harvest
  // its per-operator metrics into the result.
  PhysicalOperatorPtr root;
  RFV_ASSIGN_OR_RETURN(root, BuildPhysicalPlan(*plan, options_.exec));
  std::vector<Row> rows;
  RFV_ASSIGN_OR_RETURN(rows, ExecuteToVector(root.get()));
  ResultSet rs(plan->schema, std::move(rows));
  rs.SetMetrics(CollectMetrics(*root));
  return rs;
}

Result<ResultSet> Database::ExecuteCreateTable(const CreateTableStmt& stmt) {
  Schema schema;
  std::vector<std::string> pk_columns;
  for (const ColumnSpec& col : stmt.columns) {
    schema.AddColumn(ColumnDef(ToLower(col.name), col.type));
    if (col.primary_key) pk_columns.push_back(ToLower(col.name));
  }
  Table* table = nullptr;
  {
    Result<Table*> r = catalog_.CreateTable(stmt.table_name, std::move(schema));
    if (!r.ok()) return r.status();
    table = *r;
  }
  for (const std::string& pk : pk_columns) {
    RFV_RETURN_IF_ERROR(
        table->CreateIndex(ToLower(stmt.table_name) + "_pk_" + pk, pk));
  }
  return ResultSet::ForDml(0);
}

Result<ResultSet> Database::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  Result<Table*> table = catalog_.GetTable(stmt.table_name);
  if (!table.ok()) return table.status();
  RFV_RETURN_IF_ERROR((*table)->CreateIndex(ToLower(stmt.index_name),
                                            ToLower(stmt.column_name)));
  return ResultSet::ForDml(0);
}

Result<ResultSet> Database::ExecuteInsert(const InsertStmt& stmt) {
  Result<Table*> table_result = catalog_.GetTable(stmt.table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;
  const Schema& schema = table->schema();

  // Resolve the column list to positions (positional when omitted).
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      Result<size_t> c = schema.FindColumn("", name);
      if (!c.ok()) return c.status();
      targets.push_back(*c);
    }
  }

  Binder binder(&catalog_);
  const Schema empty_schema;
  const Row empty_row;
  int64_t inserted = 0;
  for (const std::vector<AstExprPtr>& row_exprs : stmt.rows) {
    if (row_exprs.size() != targets.size()) {
      return Status::InvalidArgument(
          "INSERT value count does not match column count");
    }
    std::vector<Value> values(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < row_exprs.size(); ++i) {
      ExprPtr bound;
      RFV_ASSIGN_OR_RETURN(bound,
                           binder.BindScalar(*row_exprs[i], empty_schema));
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*bound, empty_row));
      values[targets[i]] = std::move(v);
    }
    RFV_RETURN_IF_ERROR(table->Insert(Row(std::move(values))));
    ++inserted;
  }
  return ResultSet::ForDml(inserted);
}

Result<ResultSet> Database::ExecuteUpdate(const UpdateStmt& stmt) {
  Result<Table*> table_result = catalog_.GetTable(stmt.table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;
  const Schema schema =
      table->schema().WithQualifier(ToLower(stmt.table_name));

  Binder binder(&catalog_);
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [name, expr] : stmt.assignments) {
    Result<size_t> c = table->schema().FindColumn("", name);
    if (!c.ok()) return c.status();
    ExprPtr bound;
    RFV_ASSIGN_OR_RETURN(bound, binder.BindScalar(*expr, schema));
    assignments.emplace_back(*c, std::move(bound));
  }
  ExprPtr where;
  if (stmt.where != nullptr) {
    RFV_ASSIGN_OR_RETURN(where, binder.BindScalar(*stmt.where, schema));
  }

  // Two-phase: evaluate first, apply second (self-referencing updates).
  std::vector<std::pair<size_t, Row>> updates;
  for (size_t r = 0; r < table->NumRows(); ++r) {
    const Row& row = table->row(r);
    if (where != nullptr) {
      bool keep = false;
      RFV_ASSIGN_OR_RETURN(keep, Evaluator::EvalPredicate(*where, row));
      if (!keep) continue;
    }
    Row updated = row;
    for (const auto& [column, expr] : assignments) {
      Value v;
      RFV_ASSIGN_OR_RETURN(v, Evaluator::Eval(*expr, row));
      updated[column] = std::move(v);
    }
    updates.emplace_back(r, std::move(updated));
  }
  for (auto& [r, row] : updates) {
    RFV_RETURN_IF_ERROR(table->UpdateRow(r, std::move(row)));
  }
  return ResultSet::ForDml(static_cast<int64_t>(updates.size()));
}

Result<ResultSet> Database::ExecuteDelete(const DeleteStmt& stmt) {
  Result<Table*> table_result = catalog_.GetTable(stmt.table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;
  const Schema schema =
      table->schema().WithQualifier(ToLower(stmt.table_name));

  Binder binder(&catalog_);
  ExprPtr where;
  if (stmt.where != nullptr) {
    RFV_ASSIGN_OR_RETURN(where, binder.BindScalar(*stmt.where, schema));
  }
  std::vector<size_t> victims;
  for (size_t r = 0; r < table->NumRows(); ++r) {
    if (where != nullptr) {
      bool hit = false;
      RFV_ASSIGN_OR_RETURN(hit,
                           Evaluator::EvalPredicate(*where, table->row(r)));
      if (!hit) continue;
    }
    victims.push_back(r);
  }
  // Delete from the back so earlier row ids stay valid.
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    RFV_RETURN_IF_ERROR(table->DeleteRow(*it));
  }
  return ResultSet::ForDml(static_cast<int64_t>(victims.size()));
}

Result<ResultSet> Database::ExecuteCreateView(const CreateViewStmt& stmt) {
  if (!stmt.materialized) {
    return Status::NotSupported(
        "only MATERIALIZED views are supported (the paper's subject)");
  }
  // A sequence-view-shaped SELECT becomes a registered sequence view
  // with complete header/trailer; anything else materializes as a plain
  // snapshot table.
  bool wants_order = false;
  const std::optional<SeqQuery> seq_query =
      Rewriter::RecognizeSimpleWindowQuery(*stmt.query, &wants_order);
  if (seq_query.has_value() && !seq_query->is_avg) {
    SequenceViewDef def;
    def.view_name = ToLower(stmt.view_name);
    def.base_table = seq_query->base_table;
    def.value_column = seq_query->value_column;
    def.order_column = seq_query->order_column;
    def.partition_columns = seq_query->partition_columns;
    def.fn = seq_query->fn;
    def.window = seq_query->window;
    def.indexed = true;
    Result<const SequenceViewDef*> r = views_.CreateSequenceView(def);
    if (!r.ok()) return r.status();
    Result<Table*> content = catalog_.GetTable(def.view_name);
    if (!content.ok()) return content.status();
    return ResultSet::ForDml(static_cast<int64_t>((*content)->NumRows()));
  }

  // Generic materialization: run the query, snapshot the result.
  ResultSet rs;
  RFV_ASSIGN_OR_RETURN(rs, ExecuteSelect(*stmt.query, /*allow_rewrite=*/true));
  Schema schema;
  for (size_t i = 0; i < rs.schema().NumColumns(); ++i) {
    const ColumnDef& col = rs.schema().column(i);
    schema.AddColumn(ColumnDef(ToLower(col.name), col.type));
  }
  Table* table = nullptr;
  {
    Result<Table*> r = catalog_.CreateTable(stmt.view_name, std::move(schema));
    if (!r.ok()) return r.status();
    table = *r;
  }
  std::vector<Row> rows = rs.rows();
  RFV_RETURN_IF_ERROR(table->InsertBatch(std::move(rows)));
  return ResultSet::ForDml(static_cast<int64_t>(table->NumRows()));
}

Result<ResultSet> Database::ExecuteDropTable(const DropTableStmt& stmt) {
  if (views_.FindView(ToLower(stmt.table_name)) != nullptr) {
    RFV_RETURN_IF_ERROR(views_.DropView(stmt.table_name));
    return ResultSet::ForDml(0);
  }
  RFV_RETURN_IF_ERROR(catalog_.DropTable(stmt.table_name));
  return ResultSet::ForDml(0);
}

}  // namespace rfv
