#ifndef RFVIEW_DB_DATABASE_H_
#define RFVIEW_DB_DATABASE_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"
#include "db/admission.h"
#include "db/query_log.h"
#include "db/result_set.h"
#include "db/system_views.h"
#include "exec/executor.h"
#include "parser/ast.h"
#include "rewrite/rewriter.h"
#include "storage/catalog.h"
#include "view/view_manager.h"

namespace rfv {

/// The top-level façade: SQL text in, ResultSet out. Wires together the
/// catalog, parser, binder, optimizer, executor, view manager and the
/// reporting-function view rewriter.
///
///   Database db;
///   db.Execute("CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE)");
///   db.Execute("INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)");
///   auto rs = db.Execute(
///       "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 "
///       "PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos");
///
/// `CREATE MATERIALIZED VIEW v AS SELECT pos, SUM(val) OVER (...) FROM
/// seq` materializes a *complete* sequence view (header/trailer rows)
/// and registers it with the rewriter; subsequent window queries over
/// `seq` are answered from `v` via the paper's derivation patterns when
/// derivable (see options()).
class Database {
 public:
  struct Options {
    /// Answer window queries from materialized sequence views when
    /// derivable (paper §3–§5). Off = always compute from base data.
    bool enable_view_rewrite = true;
    /// Disjunctive-predicate vs. UNION pattern variant (paper Table 2).
    RewriteVariant rewrite_variant = RewriteVariant::kDisjunctive;
    /// Force MaxOA or MinOA instead of the automatic choice.
    std::optional<DerivationMethod> force_method;
    /// Automatic derivation choice prices every (view, method)
    /// alternative against live table statistics, including declining
    /// the rewrite when base-table recompute estimates cheaper; off =
    /// the paper's static preference order, always rewriting.
    bool use_cost_model = true;
    /// Record a query-lifecycle trace for every Execute() call and
    /// attach it to the ResultSet (exportable as Chrome trace-event
    /// JSON). Off by default: tracing costs a few clock reads per
    /// span even though spans are cheap.
    bool enable_tracing = false;
    /// Physical execution knobs: index/hash join toggles plus the
    /// window parallelism controls (exec.window_workers /
    /// exec.window_parallel_min_rows — see ExecOptions).
    ExecOptions exec;
  };

  Database()
      : views_(&catalog_),
        rewriter_(&catalog_, &views_),
        system_views_(&catalog_, &views_, &query_log_) {
    catalog_.RegisterVirtualSchema(SystemViewProvider::kSchemaName,
                                   &system_views_);
  }

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one SQL statement under the engine-default options().
  Result<ResultSet> Execute(const std::string& sql);

  /// Executes one SQL statement under caller-supplied options — the
  /// per-session entry point (see db/session.h). Thread-safe: SELECTs
  /// from any number of threads run concurrently against pinned table
  /// snapshots; DML/DDL statements serialize on the engine write mutex.
  /// Every call passes the admission controller first (concurrent-query
  /// cap; excess callers queue).
  Result<ResultSet> Execute(const std::string& sql, const Options& options);

  /// Executes a `;`-separated script, discarding SELECT results.
  Status ExecuteScript(const std::string& sql);

  /// Renders the optimized logical plan of a SELECT.
  Result<std::string> Explain(const std::string& sql);

  /// Process-wide metrics (queries, rewrites, index probes, view
  /// maintenance...) in Prometheus text exposition format.
  static std::string MetricsText();

  /// The captured workload (one QueryEvent per Execute call, bounded
  /// ring) as JSONL — the view advisor's observed query stream. Also
  /// queryable in SQL as `rfv_system.queries` / `rfv_system.operators`.
  std::string WorkloadJsonl() const { return query_log_.ToJsonl(); }

  /// Writes WorkloadJsonl() to `path` (shell `\workload export`).
  Status ExportWorkload(const std::string& path) const;

  QueryLog* query_log() { return &query_log_; }
  const QueryLog& query_log() const { return query_log_; }

  Catalog* catalog() { return &catalog_; }
  ViewManager* view_manager() { return &views_; }
  const Rewriter& rewriter() const { return rewriter_; }
  /// Engine-default options, used by the single-argument Execute().
  /// Mutate only from one thread at a time (sessions carry their own
  /// copy — see db/session.h).
  Options& options() { return options_; }
  /// Concurrent-query admission: cap + queue-depth/running metrics.
  AdmissionController* admission() { return &admission_; }

 private:
  Result<ResultSet> ExecuteStatement(const Statement& stmt,
                                     const Options& options);
  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt, bool allow_rewrite,
                                  const Options& options);
  Result<ResultSet> ExecuteExplain(const Statement& stmt,
                                   const Options& options);
  Result<std::string> ExplainDml(const Statement& stmt);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& stmt);
  Result<ResultSet> ExecuteCreateView(const CreateViewStmt& stmt,
                                      const Options& options);
  Result<ResultSet> ExecuteDropTable(const DropTableStmt& stmt);
  Result<ResultSet> ExecuteAnalyze(const AnalyzeStmt& stmt);

  Catalog catalog_;
  ViewManager views_;
  Rewriter rewriter_;
  Options options_;
  QueryLog query_log_;
  SystemViewProvider system_views_;
  AdmissionController admission_;
  /// Serializes every mutating statement (DML, DDL, ANALYZE, view
  /// maintenance) — the single-writer half of the concurrency model.
  /// Taken inside each Execute* mutator, never recursively (ExplainDml
  /// and CREATE VIEW reach mutators without holding it).
  std::mutex write_mu_;
  /// Id of the next Execute call (rfv_system.queries key).
  std::atomic<int64_t> next_query_id_{1};
};

}  // namespace rfv

#endif  // RFVIEW_DB_DATABASE_H_
