#include "db/admission.h"

#include <algorithm>
#include <chrono>

#include "common/metrics_registry.h"

namespace rfv {

namespace {

struct AdmissionMetrics {
  Gauge* running;
  Gauge* queue_depth;
  Counter* waits;
  Histogram* wait_seconds;
};

AdmissionMetrics& Metrics() {
  static AdmissionMetrics* m = [] {
    auto* metrics = new AdmissionMetrics();
    MetricsRegistry& registry = MetricsRegistry::Global();
    metrics->running = registry.GetGauge(
        "rfv_admission_running", {},
        "Statements currently holding an admission slot");
    metrics->queue_depth = registry.GetGauge(
        "rfv_admission_queue_depth", {},
        "Callers parked in Admit() waiting for a free slot");
    metrics->waits = registry.GetCounter(
        "rfv_admission_waits_total", {},
        "Admissions that found every slot busy and had to queue");
    metrics->wait_seconds = registry.GetHistogram(
        "rfv_admission_wait_seconds", {},
        "Time spent queued for an admission slot");
    return metrics;
  }();
  return *m;
}

}  // namespace

AdmissionController::AdmissionController(int max_concurrent)
    : max_concurrent_(std::max(1, max_concurrent)) {}

AdmissionController::Ticket AdmissionController::Admit() {
  AdmissionMetrics& metrics = Metrics();
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ >= max_concurrent_) {
    metrics.waits->Increment();
    const auto wait_start = std::chrono::steady_clock::now();
    ++queued_;
    metrics.queue_depth->Increment();
    slot_free_.wait(lock, [this] { return running_ < max_concurrent_; });
    --queued_;
    metrics.queue_depth->Decrement();
    metrics.wait_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count());
  }
  ++running_;
  metrics.running->Increment();
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  Metrics().running->Decrement();
  slot_free_.notify_one();
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

void AdmissionController::set_max_concurrent(int max_concurrent) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_concurrent_ = std::max(1, max_concurrent);
  }
  slot_free_.notify_all();
}

int AdmissionController::max_concurrent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_concurrent_;
}

int64_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int64_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace rfv
