#ifndef RFVIEW_DB_ADMISSION_H_
#define RFVIEW_DB_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rfv {

/// Admission control for concurrent query execution: at most
/// `max_concurrent` statements run at once; excess callers queue (FIFO
/// by condition-variable wakeup) until a slot frees. This bounds the
/// thread oversubscription a serving workload can inflict on the
/// intra-query ThreadPool — client threads beyond the cap park here
/// instead of contending for cores with running queries' window
/// workers.
///
/// Observability (process-wide metrics registry):
///   rfv_admission_running        gauge — statements currently executing
///   rfv_admission_queue_depth    gauge — callers parked waiting for a slot
///   rfv_admission_waits_total    counter — admissions that had to queue
///   rfv_admission_wait_seconds   histogram — time spent queued
class AdmissionController {
 public:
  /// Default cap: unlimited would let a burst of clients oversubscribe
  /// every core; 8 matches the serving benchmark's largest client count
  /// and leaves the ThreadPool's workers schedulable.
  explicit AdmissionController(int max_concurrent = 8);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot; releasing (destruction) wakes one queued
  /// caller.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    void Release();

   private:
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks until a slot is free, then occupies it for the ticket's
  /// lifetime.
  Ticket Admit();

  /// Adjusts the cap; raising it wakes queued callers. Values < 1 clamp
  /// to 1.
  void set_max_concurrent(int max_concurrent);
  int max_concurrent() const;

  /// Statements currently holding a slot.
  int64_t running() const;
  /// Callers currently parked in Admit().
  int64_t queue_depth() const;

 private:
  friend class Ticket;
  void ReleaseSlot();

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int max_concurrent_;
  int64_t running_ = 0;
  int64_t queued_ = 0;
};

}  // namespace rfv

#endif  // RFVIEW_DB_ADMISSION_H_
