#include "db/session.h"

#include <atomic>

#include "common/metrics_registry.h"
#include "parser/parser.h"

namespace rfv {

namespace {

int64_t NextSessionId() {
  static std::atomic<int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Session::Session(Database* db)
    : db_(db), id_(NextSessionId()), options_(db->options()) {
  static Counter* sessions = MetricsRegistry::Global().GetCounter(
      "rfv_sessions_opened_total", {},
      "Sessions opened against any Database in this process");
  sessions->Increment();
}

Result<ResultSet> Session::Execute(const std::string& sql) {
  ++statements_executed_;
  Result<ResultSet> result = db_->Execute(sql, options_);
  if (!result.ok()) {
    last_error_ = result.status();
  } else {
    last_error_ = Status::OK();
  }
  return result;
}

Status Session::Prepare(const std::string& sql) {
  // Parse-validate now so ExecutePrepared can't fail on syntax; binding
  // stays deferred — the referenced tables may legitimately appear
  // later (prepare-then-DDL is a valid session script).
  Result<Statement> parsed = Parser::ParseStatement(sql);
  if (!parsed.ok()) {
    last_error_ = parsed.status();
    return parsed.status();
  }
  prepared_sql_ = sql;
  has_prepared_ = true;
  last_error_ = Status::OK();
  return Status::OK();
}

Result<ResultSet> Session::ExecutePrepared() {
  if (!has_prepared_) {
    Status error =
        Status::InvalidArgument("no prepared statement in this session");
    last_error_ = error;
    return error;
  }
  return Execute(prepared_sql_);
}

}  // namespace rfv
