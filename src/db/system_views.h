#ifndef RFVIEW_DB_SYSTEM_VIEWS_H_
#define RFVIEW_DB_SYSTEM_VIEWS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/query_log.h"
#include "storage/virtual_table.h"
#include "view/view_manager.h"

namespace rfv {

/// The `rfv_system` virtual schema: engine introspection served as
/// ordinary tables, so the normal scan → filter → window pipeline (and
/// all three pull styles) can query the engine's own state:
///
///   rfv_system.queries      recent statements (the QueryLog ring)
///   rfv_system.operators    per-operator metrics of those statements
///   rfv_system.metrics      the metrics registry, typed (not scraped)
///   rfv_system.views        view catalog + maintenance counters
///   rfv_system.table_stats  per-column optimizer statistics
///   rfv_system.trace_spans  spans of the retired-trace ring
///
/// `Database` registers one instance with its catalog
/// (`Catalog::RegisterVirtualSchema`); the catalog materializes a fresh
/// snapshot per lookup, so a query sees consistent rows and the ring
/// mutations its own execution causes never abort its scans.
class SystemViewProvider : public VirtualTableProvider {
 public:
  static constexpr const char* kSchemaName = "rfv_system";

  SystemViewProvider(const Catalog* catalog, const ViewManager* views,
                     const QueryLog* query_log)
      : catalog_(catalog), views_(views), query_log_(query_log) {}

  std::vector<std::string> VirtualTableNames() const override;
  Result<Schema> VirtualTableSchema(const std::string& table) const override;
  Result<std::vector<Row>> MaterializeVirtualTable(
      const std::string& table) const override;

 private:
  std::vector<Row> QueriesRows() const;
  std::vector<Row> OperatorsRows() const;
  std::vector<Row> MetricsRows() const;
  std::vector<Row> ViewsRows() const;
  std::vector<Row> TableStatsRows() const;
  std::vector<Row> TraceSpansRows() const;

  const Catalog* catalog_;
  const ViewManager* views_;
  const QueryLog* query_log_;
};

}  // namespace rfv

#endif  // RFVIEW_DB_SYSTEM_VIEWS_H_
