#include "db/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace rfv {

namespace {

/// Splits one CSV record starting at *pos in `text`; advances *pos past
/// the record's trailing newline. Handles quoted fields with ""
/// escaping and embedded newlines. Returns false at end of input.
bool NextRecord(const std::string& text, size_t* pos, char delimiter,
                std::vector<std::string>* fields, bool* parse_error) {
  *parse_error = false;
  fields->clear();
  size_t i = *pos;
  const size_t n = text.size();
  if (i >= n) return false;

  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      saw_any = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
      saw_any = true;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // End of record; swallow \r\n pairs.
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      break;
    }
    field.push_back(c);
    saw_any = true;
    ++i;
  }
  if (in_quotes) {
    *parse_error = true;
    *pos = i;
    return true;
  }
  fields->push_back(std::move(field));
  *pos = i;
  // A fully empty trailing line is not a record.
  return saw_any || fields->size() > 1;
}

/// Parses one field into the column's type.
Result<Value> ParseField(const std::string& field, DataType type,
                         const std::string& null_text, size_t line) {
  if (field == null_text) return Value::Null();
  const auto error = [&](const char* what) {
    return Status::InvalidArgument(std::string(what) + " '" + field +
                                   "' at line " + std::to_string(line));
  };
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return error("invalid integer");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return error("invalid double");
      }
      return Value::Double(v);
    }
    case DataType::kBool: {
      const std::string lower = ToLower(field);
      if (lower == "true" || lower == "1") return Value::Bool(true);
      if (lower == "false" || lower == "0") return Value::Bool(false);
      return error("invalid boolean");
    }
    case DataType::kString:
    case DataType::kNull:
      return Value::String(field);
  }
  return Status::Internal("unreachable type in CSV import");
}

/// Quotes a field when it contains the delimiter, quotes or newlines.
std::string QuoteField(const std::string& field, char delimiter) {
  bool needs_quotes = false;
  for (const char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

/// Renders a value as raw CSV text (no SQL quoting).
std::string FieldText(const Value& v, const std::string& null_text) {
  switch (v.type()) {
    case DataType::kNull: return null_text;
    case DataType::kString: return v.AsString();
    case DataType::kBool: return v.AsBool() ? "true" : "false";
    case DataType::kInt64: return std::to_string(v.AsInt());
    case DataType::kDouble: {
      std::ostringstream os;
      os << v.AsDouble();
      return os.str();
    }
  }
  return "";
}

}  // namespace

Result<size_t> ImportCsv(Catalog* catalog, const std::string& table_name,
                         const std::string& path, const CsvOptions& options) {
  Result<Table*> table_result = catalog->GetTable(table_name);
  if (!table_result.ok()) return table_result.status();
  Table* table = *table_result;

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<Row> rows;
  size_t pos = 0;
  size_t line = 0;
  std::vector<std::string> fields;
  bool parse_error = false;
  while (NextRecord(text, &pos, options.delimiter, &fields, &parse_error)) {
    ++line;
    if (parse_error) {
      return Status::InvalidArgument("unterminated quoted field at line " +
                                     std::to_string(line));
    }
    if (options.header && line == 1) continue;
    if (fields.size() != table->schema().NumColumns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + " has " +
          std::to_string(fields.size()) + " fields, table " + table_name +
          " has " + std::to_string(table->schema().NumColumns()) +
          " columns");
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      Value v;
      RFV_ASSIGN_OR_RETURN(
          v, ParseField(fields[c], table->schema().column(c).type,
                        options.null_text, line));
      values.push_back(std::move(v));
    }
    rows.push_back(Row(std::move(values)));
  }
  const size_t inserted = rows.size();
  RFV_RETURN_IF_ERROR(table->InsertBatch(std::move(rows)));
  return inserted;
}

Result<size_t> ExportCsv(Catalog* catalog, const std::string& table_name,
                         const std::string& path, const CsvOptions& options) {
  Result<Table*> table_result = catalog->GetTable(table_name);
  if (!table_result.ok()) return table_result.status();
  const Table* table = *table_result;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open file " + path);
  if (options.header) {
    for (size_t c = 0; c < table->schema().NumColumns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << QuoteField(table->schema().column(c).name, options.delimiter);
    }
    out << '\n';
  }
  for (size_t r = 0; r < table->NumRows(); ++r) {
    const Row& row = table->row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << options.delimiter;
      out << QuoteField(FieldText(row[c], options.null_text),
                        options.delimiter);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::ExecutionError("write to " + path + " failed");
  return table->NumRows();
}

}  // namespace rfv
