#include "db/query_log.h"

#include <cctype>
#include <cstdio>

#include "common/metrics_registry.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "parser/lexer.h"

namespace rfv {

namespace {

bool IsLiteral(const Token& t) {
  return t.type == TokenType::kIntLiteral ||
         t.type == TokenType::kDoubleLiteral ||
         t.type == TokenType::kStringLiteral;
}

/// Canonical rendering of one token inside a fingerprint. Literals
/// strip to `?`; semicolons normalize away entirely.
std::string CanonicalToken(const Token& t) {
  switch (t.type) {
    case TokenType::kEnd:
    case TokenType::kSemicolon: return "";
    case TokenType::kIdentifier: return ToLower(t.text);
    case TokenType::kIntLiteral:
    case TokenType::kDoubleLiteral:
    case TokenType::kStringLiteral: return "?";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
  }
  return "";
}

/// Lowercases and collapses whitespace runs — the fingerprint of text
/// the lexer rejects (still groups retries of the same broken query).
std::string FallbackFingerprint(const std::string& sql) {
  std::string out;
  bool pending_space = false;
  for (const char raw : sql) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += static_cast<char>(std::tolower(c));
  }
  return out;
}

std::string FormatMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatCost(double cost) {
  if (cost < 0) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", cost);
  return buf;
}

}  // namespace

std::string NormalizeFingerprint(const std::string& sql) {
  const Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return FallbackFingerprint(sql);

  std::string out;
  const auto append = [&out](const std::string& text) {
    if (text.empty()) return;
    const bool no_space_before =
        text == "," || text == ")" || text == ".";
    const bool no_space_after =
        !out.empty() && (out.back() == '(' || out.back() == '.');
    if (!out.empty() && !no_space_before && !no_space_after) out += ' ';
    out += text;
  };

  const std::vector<Token>& ts = *tokens;
  for (size_t i = 0; i < ts.size(); ++i) {
    // All-literal IN lists collapse to a single placeholder, so
    // `x IN (1, 2, 3)` and `x IN (4)` share one template.
    if (ts[i].type == TokenType::kIdentifier &&
        ToLower(ts[i].text) == "in" && i + 1 < ts.size() &&
        ts[i + 1].type == TokenType::kLParen) {
      size_t j = i + 2;
      size_t literals = 0;
      while (j < ts.size() &&
             (IsLiteral(ts[j]) || ts[j].type == TokenType::kComma)) {
        if (IsLiteral(ts[j])) ++literals;
        ++j;
      }
      if (j < ts.size() && ts[j].type == TokenType::kRParen && literals > 0) {
        append("in");
        append("(");
        append("?");
        append(")");
        i = j;
        continue;
      }
    }
    append(CanonicalToken(ts[i]));
  }
  return out;
}

std::string QueryEvent::ToJson() const {
  std::string j = "{\"query_id\": " + std::to_string(query_id);
  j += ", \"kind\": \"" + JsonEscape(kind) + "\"";
  j += ", \"status\": \"" + JsonEscape(status) + "\"";
  j += ", \"error\": \"" + JsonEscape(error) + "\"";
  j += ", \"sql\": \"" + JsonEscape(sql) + "\"";
  j += ", \"fingerprint\": \"" + JsonEscape(fingerprint) + "\"";
  j += ", \"duration_ms\": " + FormatMs(duration_ns);
  j += ", \"phases\": {";
  for (size_t i = 0; i < phase_ns.size(); ++i) {
    if (i > 0) j += ", ";
    j += "\"" + JsonEscape(phase_ns[i].first) +
         "\": " + FormatMs(phase_ns[i].second);
  }
  j += "}";
  j += ", \"rows_in\": " + std::to_string(rows_in);
  j += ", \"rows_out\": " + std::to_string(rows_out);
  j += ", \"rewrite\": {\"decision\": \"" + JsonEscape(rewrite) + "\"";
  j += ", \"view\": \"" + JsonEscape(rewrite_view) + "\"";
  j += ", \"cost_estimate\": " + FormatCost(cost_estimate);
  j += ", \"candidates\": [";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const QueryEventCandidate& c = candidates[i];
    if (i > 0) j += ", ";
    j += "{\"view\": \"" + JsonEscape(c.view) + "\"";
    j += ", \"derivable\": " + std::string(c.derivable ? "true" : "false");
    j += ", \"method\": \"" + JsonEscape(c.method) + "\"";
    j += ", \"chosen\": " + std::string(c.chosen ? "true" : "false");
    j += ", \"cost\": " + FormatCost(c.cost);
    j += ", \"detail\": \"" + JsonEscape(c.detail) + "\"}";
  }
  j += "]}";
  j += ", \"operators\": [";
  for (size_t i = 0; i < operators.size(); ++i) {
    const QueryEventOperator& o = operators[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "\"open_ms\": %.3f, \"next_ms\": %.3f", o.open_ms,
                  o.next_ms);
    if (i > 0) j += ", ";
    j += "{\"op\": \"" + JsonEscape(o.op) + "\"";
    j += ", \"depth\": " + std::to_string(o.depth);
    j += ", \"rows_in\": " + std::to_string(o.rows_in);
    j += ", \"rows_out\": " + std::to_string(o.rows_out);
    j += ", \"next_calls\": " + std::to_string(o.next_calls);
    j += ", \"batches_out\": " + std::to_string(o.batches_out);
    j += ", " + std::string(buf);
    j += ", \"peak_buffered_rows\": " + std::to_string(o.peak_buffered_rows);
    j += "}";
  }
  j += "]}";
  return j;
}

void QueryLog::Append(QueryEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
  ++total_appended_;
  EvictLocked();
}

void QueryLog::EvictLocked() {
  if (events_.size() <= capacity_) return;
  static Counter* dropped = MetricsRegistry::Global().GetCounter(
      "rfv_workload_events_dropped_total", {},
      "QueryEvents evicted from the bounded workload ring");
  while (events_.size() > capacity_) {
    events_.pop_front();
    dropped->Increment();
  }
}

std::vector<QueryEvent> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryEvent>(events_.begin(), events_.end());
}

std::string QueryLog::ToJsonl() const {
  std::string out;
  for (const QueryEvent& e : Snapshot()) {
    out += e.ToJson();
    out += "\n";
  }
  return out;
}

size_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t QueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void QueryLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  EvictLocked();
}

int64_t QueryLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_appended_;
}

}  // namespace rfv
