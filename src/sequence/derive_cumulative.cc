#include "sequence/derive_cumulative.h"

namespace rfv {

namespace {

Status ValidateCumulativeSum(const Sequence& seq) {
  if (!seq.spec().is_cumulative()) {
    return Status::InvalidArgument("expected a cumulative sequence");
  }
  if (seq.fn() != SeqAggFn::kSum) {
    return Status::InvalidArgument(
        "cumulative derivation requires a SUM sequence (MIN/MAX running "
        "aggregates are not invertible)");
  }
  return Status::OK();
}

/// Cumulative accessor with zero header and saturated trailer.
inline SeqValue CumAt(const Sequence& c, int64_t k) {
  if (k < 1) return 0;
  if (k > c.n()) return c.at(c.n());
  return c.at(k);
}

}  // namespace

Result<std::vector<SeqValue>> RawFromCumulative(const Sequence& cumulative) {
  RFV_RETURN_IF_ERROR(ValidateCumulativeSum(cumulative));
  const int64_t n = cumulative.n();
  std::vector<SeqValue> x(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    x[static_cast<size_t>(k - 1)] = CumAt(cumulative, k) -
                                    CumAt(cumulative, k - 1);
  }
  return x;
}

Result<std::vector<SeqValue>> SlidingFromCumulative(const Sequence& cumulative,
                                                    const WindowSpec& target) {
  RFV_RETURN_IF_ERROR(ValidateCumulativeSum(cumulative));
  if (!target.is_sliding()) {
    return Status::InvalidArgument("target window must be sliding");
  }
  const int64_t n = cumulative.n();
  std::vector<SeqValue> y(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    y[static_cast<size_t>(k - 1)] =
        CumAt(cumulative, k + target.h()) -
        CumAt(cumulative, k - target.l() - 1);
  }
  return y;
}

}  // namespace rfv
