#include "sequence/maintain.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace rfv {

namespace {

inline SeqValue RawAt(const std::vector<SeqValue>& x, int64_t i) {
  if (i < 1 || i > static_cast<int64_t>(x.size())) return 0;
  return x[static_cast<size_t>(i - 1)];
}

/// Recomputes MIN/MAX sequence values for positions [from, to] against
/// the (already updated) raw data, via one monotonic-deque sweep.
void RecomputeMinMaxRange(const std::vector<SeqValue>& x, Sequence* seq,
                          int64_t from, int64_t to) {
  const WindowSpec& spec = seq->spec();
  const bool is_min = seq->fn() == SeqAggFn::kMin;
  const int64_t n = static_cast<int64_t>(x.size());
  // MIN/MAX windows are clipped to [1, n] (see compute.cc).
  std::deque<std::pair<int64_t, SeqValue>> mono;
  int64_t next = std::max<int64_t>(from - spec.l(), 1);
  std::vector<SeqValue>& values = *seq->mutable_values();
  for (int64_t k = from; k <= to; ++k) {
    const int64_t hi = std::min(k + spec.h(), n);
    const int64_t lo = k - spec.l();
    for (; next <= hi; ++next) {
      const SeqValue v = RawAt(x, next);
      while (!mono.empty() &&
             (is_min ? mono.back().second >= v : mono.back().second <= v)) {
        mono.pop_back();
      }
      mono.emplace_back(next, v);
    }
    while (!mono.empty() && mono.front().first < lo) mono.pop_front();
    RFV_CHECK(!mono.empty());
    values[static_cast<size_t>(k - seq->first_pos())] = mono.front().second;
  }
}

Status ValidateSlidingSeq(const Sequence& seq) {
  if (!seq.spec().is_sliding()) {
    return Status::InvalidArgument(
        "sliding-window maintenance on a non-sliding sequence");
  }
  if (!seq.IsComplete()) {
    return Status::InvalidArgument(
        "maintenance requires a complete sequence (header/trailer)");
  }
  return Status::OK();
}

}  // namespace

Result<size_t> MaintainUpdate(std::vector<SeqValue>* x, Sequence* seq,
                              int64_t k, SeqValue new_value) {
  RFV_RETURN_IF_ERROR(ValidateSlidingSeq(*seq));
  const int64_t n = static_cast<int64_t>(x->size());
  if (k < 1 || k > n) {
    return Status::InvalidArgument("update position out of range");
  }
  const WindowSpec& spec = seq->spec();
  const SeqValue old_value = (*x)[static_cast<size_t>(k - 1)];
  (*x)[static_cast<size_t>(k - 1)] = new_value;

  const int64_t from = k - spec.h();
  const int64_t to = k + spec.l();
  std::vector<SeqValue>& values = *seq->mutable_values();
  if (seq->fn() == SeqAggFn::kSum) {
    const SeqValue delta = new_value - old_value;
    for (int64_t i = from; i <= to; ++i) {
      values[static_cast<size_t>(i - seq->first_pos())] += delta;
    }
  } else if ((seq->fn() == SeqAggFn::kMin && new_value <= old_value) ||
             (seq->fn() == SeqAggFn::kMax && new_value >= old_value)) {
    // Paper §2.3 footnote: when the update improves the extreme, the
    // affected positions update with min(x̃_i, x'_k) / max(x̃_i, x'_k)
    // directly — no window rescan.
    const bool is_min = seq->fn() == SeqAggFn::kMin;
    for (int64_t i = from; i <= to; ++i) {
      SeqValue& v = values[static_cast<size_t>(i - seq->first_pos())];
      v = is_min ? std::min(v, new_value) : std::max(v, new_value);
    }
  } else {
    // The update may retire the current extreme: rescan the affected
    // windows.
    RecomputeMinMaxRange(*x, seq, from, to);
  }
  return static_cast<size_t>(to - from + 1);
}

Result<size_t> MaintainInsert(std::vector<SeqValue>* x, Sequence* seq,
                              int64_t k, SeqValue value) {
  RFV_RETURN_IF_ERROR(ValidateSlidingSeq(*seq));
  const int64_t n = static_cast<int64_t>(x->size());
  if (k < 1 || k > n + 1) {
    return Status::InvalidArgument("insert position out of range");
  }
  const WindowSpec& spec = seq->spec();
  const int64_t first = seq->first_pos();
  const int64_t new_last = n + 1 + spec.l();

  const std::vector<SeqValue> old_x = *x;  // rules reference old raw data
  const int64_t mid_from = k - spec.h();
  const int64_t mid_to = k + spec.l();

  std::vector<SeqValue> new_values(
      static_cast<size_t>(new_last - first + 1), 0);
  for (int64_t i = first; i <= new_last; ++i) {
    SeqValue v;
    if (i < mid_from) {
      v = seq->at(i);
    } else if (i <= mid_to) {
      if (seq->fn() == SeqAggFn::kSum) {
        // x̃'_i = v + x̃_i − x_{i+h} over the old state.
        v = value + seq->at(i) - RawAt(old_x, i + spec.h());
      } else {
        v = 0;  // recomputed below
      }
    } else {
      v = seq->at(i - 1);
    }
    new_values[static_cast<size_t>(i - first)] = v;
  }

  x->insert(x->begin() + static_cast<ptrdiff_t>(k - 1), value);
  *seq->mutable_values() = std::move(new_values);
  seq->set_n(n + 1);
  if (seq->fn() != SeqAggFn::kSum) {
    RecomputeMinMaxRange(*x, seq, mid_from, mid_to);
  }
  return static_cast<size_t>(mid_to - mid_from + 1);
}

Result<size_t> MaintainDelete(std::vector<SeqValue>* x, Sequence* seq,
                              int64_t k) {
  RFV_RETURN_IF_ERROR(ValidateSlidingSeq(*seq));
  const int64_t n = static_cast<int64_t>(x->size());
  if (k < 1 || k > n) {
    return Status::InvalidArgument("delete position out of range");
  }
  if (n == 0) return Status::InvalidArgument("delete from empty sequence");
  const WindowSpec& spec = seq->spec();
  const int64_t first = seq->first_pos();
  const int64_t new_last = n - 1 + spec.l();

  const std::vector<SeqValue> old_x = *x;
  const SeqValue deleted = RawAt(old_x, k);
  const int64_t mid_from = k - spec.h();
  const int64_t mid_to = k + spec.l() - 1;

  std::vector<SeqValue> new_values(
      static_cast<size_t>(std::max<int64_t>(new_last - first + 1, 0)), 0);
  for (int64_t i = first; i <= new_last; ++i) {
    SeqValue v;
    if (i < mid_from) {
      v = seq->at(i);
    } else if (i <= mid_to) {
      if (seq->fn() == SeqAggFn::kSum) {
        // x̃'_i = x̃_i − x_k + x_{i+h+1} over the old state.
        v = seq->at(i) - deleted + RawAt(old_x, i + spec.h() + 1);
      } else {
        v = 0;  // recomputed below
      }
    } else {
      v = seq->at(i + 1);
    }
    new_values[static_cast<size_t>(i - first)] = v;
  }

  x->erase(x->begin() + static_cast<ptrdiff_t>(k - 1));
  *seq->mutable_values() = std::move(new_values);
  seq->set_n(n - 1);
  if (seq->fn() != SeqAggFn::kSum && mid_to >= mid_from) {
    RecomputeMinMaxRange(*x, seq, mid_from, std::min(mid_to, new_last));
  }
  return static_cast<size_t>(std::max<int64_t>(mid_to - mid_from + 1, 0));
}

Result<size_t> MaintainCumulativeUpdate(std::vector<SeqValue>* x,
                                        Sequence* seq, int64_t k,
                                        SeqValue new_value) {
  if (!seq->spec().is_cumulative()) {
    return Status::InvalidArgument(
        "cumulative maintenance on a non-cumulative sequence");
  }
  if (seq->fn() != SeqAggFn::kSum) {
    return Status::NotSupported(
        "incremental cumulative maintenance implemented for SUM only");
  }
  const int64_t n = static_cast<int64_t>(x->size());
  if (k < 1 || k > n) {
    return Status::InvalidArgument("update position out of range");
  }
  const SeqValue delta = new_value - (*x)[static_cast<size_t>(k - 1)];
  (*x)[static_cast<size_t>(k - 1)] = new_value;
  std::vector<SeqValue>& values = *seq->mutable_values();
  for (int64_t i = k; i <= n; ++i) {
    values[static_cast<size_t>(i - seq->first_pos())] += delta;
  }
  return static_cast<size_t>(n - k + 1);
}

}  // namespace rfv
