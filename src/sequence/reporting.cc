#include "sequence/reporting.h"

#include <algorithm>

#include "common/logging.h"
#include "sequence/compute.h"
#include "sequence/derive_cumulative.h"
#include "sequence/minoa.h"

namespace rfv {

PositionSpace::PositionSpace(std::vector<int64_t> cardinalities)
    : cardinalities_(std::move(cardinalities)) {
  RFV_CHECK(!cardinalities_.empty());
  strides_.assign(cardinalities_.size(), 1);
  for (size_t i = cardinalities_.size(); i-- > 0;) {
    RFV_CHECK_MSG(cardinalities_[i] > 0, "cardinality must be positive");
    if (i + 1 < cardinalities_.size()) {
      strides_[i] = strides_[i + 1] * cardinalities_[i + 1];
    }
  }
  total_ = strides_[0] * cardinalities_[0];
}

Result<int64_t> PositionSpace::pos(const std::vector<int64_t>& coords) const {
  if (coords.size() != cardinalities_.size()) {
    return Status::InvalidArgument("pos(): coordinate arity mismatch");
  }
  int64_t p = 1;
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] < 1 || coords[i] > cardinalities_[i]) {
      return Status::InvalidArgument(
          "pos(): coordinate " + std::to_string(i + 1) + " out of domain");
    }
    p += (coords[i] - 1) * strides_[i];
  }
  return p;
}

Result<std::vector<int64_t>> PositionSpace::coords(int64_t k) const {
  if (k < 1 || k > total_) {
    return Status::InvalidArgument("coords(): position out of range");
  }
  std::vector<int64_t> out(cardinalities_.size(), 1);
  int64_t rest = k - 1;
  for (size_t i = 0; i < cardinalities_.size(); ++i) {
    out[i] = rest / strides_[i] + 1;
    rest %= strides_[i];
  }
  return out;
}

namespace {

/// Block size when collapsing the right-most j ordering columns.
Result<int64_t> BlockSize(const PositionSpace& space, size_t j) {
  if (j < 1 || j >= space.num_columns()) {
    return Status::InvalidArgument(
        "ordering reduction must drop between 1 and n-1 columns");
  }
  int64_t block = 1;
  for (size_t i = space.num_columns() - j; i < space.num_columns(); ++i) {
    block *= space.cardinality(i);
  }
  return block;
}

}  // namespace

Result<std::vector<SeqValue>> OrderingReductionCumulative(
    const PositionSpace& space, const std::vector<SeqValue>& fine_cumulative,
    size_t j) {
  int64_t block = 0;
  RFV_ASSIGN_OR_RETURN(block, BlockSize(space, j));
  if (static_cast<int64_t>(fine_cumulative.size()) != space.total()) {
    return Status::InvalidArgument(
        "fine sequence size does not match the position space");
  }
  const int64_t blocks = space.total() / block;
  std::vector<SeqValue> coarse(static_cast<size_t>(blocks), 0);
  for (int64_t b = 0; b < blocks; ++b) {
    // The lemma's window w'_H(k) = pos(prefix+1, 1..1) − k − 1 points at
    // the last fine position of block b, where the fine cumulative value
    // equals the coarse cumulative value.
    coarse[static_cast<size_t>(b)] =
        fine_cumulative[static_cast<size_t>((b + 1) * block - 1)];
  }
  return coarse;
}

Result<std::vector<SeqValue>> OrderingReductionBlockTotals(
    const PositionSpace& space, const std::vector<SeqValue>& fine_cumulative,
    size_t j) {
  std::vector<SeqValue> coarse;
  RFV_ASSIGN_OR_RETURN(coarse,
                       OrderingReductionCumulative(space, fine_cumulative, j));
  for (size_t b = coarse.size(); b-- > 1;) {
    coarse[b] -= coarse[b - 1];
  }
  return coarse;
}

Status PartitionedSequence::AddPartition(std::vector<int64_t> key,
                                         std::vector<SeqValue> raw) {
  if (!partitions_.empty() && !(partitions_.back().key < key)) {
    return Status::InvalidArgument(
        "partitions must be added in ascending key order");
  }
  Sequence sequence = BuildCompleteSequence(raw, spec_, fn_);
  partitions_.push_back(
      Partition{std::move(key), std::move(raw), std::move(sequence)});
  return Status::OK();
}

bool PartitionedSequence::IsComplete() const {
  for (const Partition& p : partitions_) {
    if (!p.sequence.IsComplete()) return false;
  }
  return true;
}

Result<PartitionedSequence> PartitionedSequence::ReducePartitioning(
    size_t drop) const {
  if (partitions_.empty()) {
    return Status::InvalidArgument("no partitions to reduce");
  }
  const size_t key_width = partitions_.front().key.size();
  if (drop < 1 || drop > key_width) {
    return Status::InvalidArgument("invalid partition-column drop count");
  }
  if (!IsComplete()) {
    return Status::NotDerivable(
        "partitioning reduction requires a complete reporting function "
        "(header/trailer per partition)");
  }
  if (fn_ != SeqAggFn::kSum) {
    return Status::NotDerivable(
        "partitioning reduction reconstructs raw data from the partition "
        "sequences, which is only possible for SUM");
  }

  PartitionedSequence reduced(spec_, fn_);
  size_t group_start = 0;
  while (group_start < partitions_.size()) {
    const std::vector<int64_t> prefix(
        partitions_[group_start].key.begin(),
        partitions_[group_start].key.end() - static_cast<ptrdiff_t>(drop));
    // Merge all partitions sharing the prefix: reconstruct each member's
    // raw data *from its sequence* (the derivation the lemma licenses),
    // concatenate in key order, re-sequence.
    std::vector<SeqValue> merged_raw;
    size_t group_end = group_start;
    while (group_end < partitions_.size()) {
      const std::vector<int64_t>& key = partitions_[group_end].key;
      if (!std::equal(prefix.begin(), prefix.end(), key.begin())) break;
      std::vector<SeqValue> raw;
      if (spec_.is_cumulative()) {
        RFV_ASSIGN_OR_RETURN(
            raw, RawFromCumulative(partitions_[group_end].sequence));
      } else {
        RFV_ASSIGN_OR_RETURN(
            raw, RawFromSlidingLinear(partitions_[group_end].sequence));
      }
      merged_raw.insert(merged_raw.end(), raw.begin(), raw.end());
      ++group_end;
    }
    RFV_RETURN_IF_ERROR(
        reduced.AddPartition(prefix, std::move(merged_raw)));
    group_start = group_end;
  }
  return reduced;
}

}  // namespace rfv
