#ifndef RFVIEW_SEQUENCE_DERIVE_CUMULATIVE_H_
#define RFVIEW_SEQUENCE_DERIVE_CUMULATIVE_H_

#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace rfv {

/// Derivations from materialized *cumulative* sequences (paper §3.1).
/// A cumulative SUM sequence c_k = Σ_{i<=k} x_i is accessed with the
/// conventions c_k = 0 for k < 1 and c_k = c_n for k > n (the cumulative
/// header is identically zero and the trailer saturates).

/// Reconstructs the raw data x_1..x_n: x_k = c_k − c_{k-1}.
/// Errors: kInvalidArgument for non-cumulative or non-SUM input.
Result<std::vector<SeqValue>> RawFromCumulative(const Sequence& cumulative);

/// Derives a sliding-window sequence ỹ = (l, h) for positions 1..n:
/// ỹ_k = c_{k+h} − c_{k-l-1} (paper Fig. 5). Works for every (l, h) —
/// cumulative views dominate all sliding windows.
/// Errors: kInvalidArgument for non-cumulative/non-SUM input or a
/// non-sliding target.
Result<std::vector<SeqValue>> SlidingFromCumulative(const Sequence& cumulative,
                                                    const WindowSpec& target);

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_DERIVE_CUMULATIVE_H_
