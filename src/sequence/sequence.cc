#include "sequence/sequence.h"

#include <sstream>

namespace rfv {

bool Sequence::IsComplete() const {
  if (spec_.is_cumulative()) {
    // A cumulative sequence has an implicit zero header and saturated
    // trailer; storing [1, n] suffices.
    return first_pos() <= 1 && last_pos() >= n_;
  }
  const int64_t header_start = -spec_.h() + 1;
  const int64_t trailer_end = n_ + spec_.l();
  return first_pos() <= header_start && last_pos() >= trailer_end;
}

std::vector<SeqValue> Sequence::BodyValues() const {
  std::vector<SeqValue> body;
  body.reserve(static_cast<size_t>(n_));
  for (int64_t k = 1; k <= n_; ++k) body.push_back(at(k));
  return body;
}

std::string Sequence::ToString() const {
  std::ostringstream os;
  os << SeqAggFnName(fn_) << spec_.ToString() << " n=" << n_ << " [";
  for (int64_t k = first_pos(); k <= last_pos(); ++k) {
    if (k > first_pos()) os << ", ";
    os << k << ":" << at(k);
  }
  os << "]";
  return os.str();
}

}  // namespace rfv
