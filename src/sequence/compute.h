#ifndef RFVIEW_SEQUENCE_COMPUTE_H_
#define RFVIEW_SEQUENCE_COMPUTE_H_

#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace rfv {

/// Sequence computation strategies (paper §2.2).
///
/// Raw data is x[0..n-1] = x_1..x_n (0-based storage of 1-based paper
/// positions); values outside are zero.

/// Naive explicit form: x̃_k = F{x_{k-l}, ..., x_{k+h}} — O(n·w)
/// operations, the cost profile of the paper's relational self-join
/// mapping (Fig. 2).
std::vector<SeqValue> ComputeSlidingNaive(const std::vector<SeqValue>& x,
                                          const WindowSpec& spec);

/// Pipelined recursion x̃_k = x̃_{k-1} + x_{k+h} - x_{k-l-1} — 3
/// operations per position independent of the window size, with a cache
/// of w+2 values (paper §2.2).
std::vector<SeqValue> ComputeSlidingPipelined(const std::vector<SeqValue>& x,
                                              const WindowSpec& spec);

/// Cumulative recursion x̃_k = x̃_{k-1} + x_k.
std::vector<SeqValue> ComputeCumulative(const std::vector<SeqValue>& x);

/// Sliding MIN/MAX via a monotonic deque — O(n) total.
std::vector<SeqValue> ComputeSlidingMinMax(const std::vector<SeqValue>& x,
                                           const WindowSpec& spec,
                                           bool is_min);

/// Builds a *complete* sequence (header -h+1..0 and trailer n+1..n+l
/// included, paper §3.2) over raw data x_1..x_n. SUM uses the pipelined
/// scheme; MIN/MAX the deque. Cumulative sequences store [1, n] (header
/// is identically 0, trailer saturates at x̃_n).
/// Errors: kInvalidArgument for MIN/MAX with a cumulative spec are
/// accepted (running MIN/MAX) — no error cases currently.
Sequence BuildCompleteSequence(const std::vector<SeqValue>& x,
                               const WindowSpec& spec, SeqAggFn fn);

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_COMPUTE_H_
