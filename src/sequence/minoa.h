#ifndef RFVIEW_SEQUENCE_MINOA_H_
#define RFVIEW_SEQUENCE_MINOA_H_

#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace rfv {

/// MinOA — the Minimal Overlapping Algorithm (paper §5): derive a query
/// sequence ỹ = (l_y, h_y) from a complete view sequence x̃ = (l_x, h_x)
/// as the difference of two telescoping view-window chains:
///
///   ỹ_k = Σ_{i>=0} x̃_{k+Δh−i·w_x}  −  Σ_{i>=1} x̃_{k−Δl−i·w_x}
///
/// with w_x = l_x+h_x+1, Δl = l_y−l_x, Δh = h_y−h_x (either may be
/// negative — MinOA imposes *no* window-size precondition beyond
/// completeness, which is why raw-value reconstruction (§3.2) is its
/// l_y = h_y = 0 special case). The positive chain tiles (−∞, k+h_y],
/// the negative chain tiles (−∞, k−l_y−1]; both are finite because the
/// complete sequence vanishes left of the header. SUM only — MIN/MAX
/// cannot be subtracted (paper §5, §7 conclusion).
struct MinoaParams {
  int64_t delta_l = 0;
  int64_t delta_h = 0;
  int64_t wx = 0;  ///< view window size (the telescoping stride)
};

/// Computes the factors; errors: kNotDerivable for non-sliding windows
/// or a non-SUM view.
Result<MinoaParams> PlanMinoa(const WindowSpec& view, const WindowSpec& query);

/// Derives ỹ_1..ỹ_n. Errors: PlanMinoa failures, incomplete view.
Result<std::vector<SeqValue>> DeriveMinoa(const Sequence& view,
                                          const WindowSpec& query);

/// Raw-value reconstruction from a sliding view (paper §3.2) — the
/// (l_y, h_y) = (0, 0) MinOA chain, per position k:
///   x_k = Σ_{i>=0} ( x̃_{k−h−i·w} − x̃_{k−h−1−i·w} ).
Result<std::vector<SeqValue>> RawFromSliding(const Sequence& view);

/// O(n) batch variant using the neighbor relationship
/// x_k = x_{k−w} + x̃_{k−h} − x̃_{k−h−1} (each position reuses the value
/// one stride earlier instead of re-summing the chain).
Result<std::vector<SeqValue>> RawFromSlidingLinear(const Sequence& view);

/// Cumulative query from a sliding view: c_k = Σ_{i>=0} x̃_{k−h−i·w}
/// (the positive MinOA chain alone).
Result<std::vector<SeqValue>> CumulativeFromSliding(const Sequence& view);

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_MINOA_H_
