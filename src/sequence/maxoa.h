#ifndef RFVIEW_SEQUENCE_MAXOA_H_
#define RFVIEW_SEQUENCE_MAXOA_H_

#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace rfv {

/// MaxOA — the Maximal Overlapping Algorithm (paper §4): derive a
/// sliding-window query sequence ỹ = (l_y, h_y) from a materialized
/// complete view sequence x̃ = (l_x, h_x) by covering each query window
/// with maximally overlapping view windows and subtracting compensation
/// sequences for the double-counted overlap.
struct MaxoaParams {
  int64_t delta_l = 0;  ///< coverage factor Δl = l_y − l_x  (>= 0)
  int64_t delta_h = 0;  ///< coverage factor Δh = h_y − h_x  (>= 0)
  int64_t delta_p = 0;  ///< overlap factor Δp = 1 + l_x + h_x − Δl
  int64_t delta_q = 0;  ///< overlap factor Δq = 1 + l_x + h_x − Δh
};

/// Validates the MaxOA preconditions and computes the factors.
/// Requirements (generalizing the paper's single-side condition
/// l_y <= h−1+2·l_x, i.e. Δl <= l_x+h_x−1, to both sides):
///   * both windows sliding, view is SUM (use DeriveMaxoaMinMax for
///     MIN/MAX),
///   * Δl >= 0 and Δh >= 0 (the query window contains the view window),
///   * Δl <= l_x + h_x − 1 and Δh <= l_x + h_x − 1 (each overlap factor
///     is >= 2, so compensation windows are proper sub-windows).
/// Errors: kNotDerivable when violated.
Result<MaxoaParams> PlanMaxoa(const WindowSpec& view, const WindowSpec& query);

/// Recursive form (paper §4.1/4.2): materializes the compensation
/// sequences z̃L/z̃H by their recursions, then
///   ỹ_k = x̃_k + (x̃_{k−Δl} − z̃L_k) + (x̃_{k+Δh} − z̃H_k).
/// Returns ỹ_1..ỹ_n. Errors: PlanMaxoa failures, non-complete view.
Result<std::vector<SeqValue>> DeriveMaxoaRecursive(const Sequence& view,
                                                   const WindowSpec& query);

/// Explicit form (paper §4.1 theorem, both sides):
///   ỹ_k = x̃_k + Σ_{i>=1} [ x̃_{k−i(Δl+Δp)} − x̃_{k−Δl−i(Δl+Δp)} ]
///              + Σ_{i>=1} [ x̃_{k+i(Δh+Δq)} − x̃_{k+Δh+i(Δh+Δq)} ].
/// This is the form the relational operator pattern (Fig. 10)
/// implements. Returns ỹ_1..ỹ_n.
Result<std::vector<SeqValue>> DeriveMaxoaExplicit(const Sequence& view,
                                                  const WindowSpec& query);

/// MIN/MAX derivation (paper §4.2 closing remark): ỹ_k =
/// min/max(x̃_{k−Δl}, x̃_{k+Δh}) when the two view windows cover the
/// query window without a gap, i.e. Δl + Δh <= l_x + h_x + 1 (overlap is
/// harmless — MIN/MAX are idempotent; that is exactly why MaxOA handles
/// them and MinOA cannot). Errors: kNotDerivable when a gap would
/// remain, kInvalidArgument when the view is not MIN/MAX.
Result<std::vector<SeqValue>> DeriveMaxoaMinMax(const Sequence& view,
                                                const WindowSpec& query);

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_MAXOA_H_
