#include "sequence/minoa.h"

namespace rfv {

namespace {

Status ValidateView(const Sequence& view) {
  if (!view.spec().is_sliding()) {
    return Status::NotDerivable("MinOA requires a sliding-window view");
  }
  if (view.fn() != SeqAggFn::kSum) {
    return Status::NotDerivable(
        "MinOA requires a SUM view (MIN/MAX cannot be subtracted)");
  }
  if (!view.IsComplete()) {
    return Status::NotDerivable(
        "MinOA requires a complete view sequence (header/trailer)");
  }
  return Status::OK();
}

}  // namespace

Result<MinoaParams> PlanMinoa(const WindowSpec& view,
                              const WindowSpec& query) {
  if (!view.is_sliding() || !query.is_sliding()) {
    return Status::NotDerivable("MinOA requires sliding windows");
  }
  MinoaParams params;
  params.delta_l = query.l() - view.l();
  params.delta_h = query.h() - view.h();
  params.wx = view.size();
  return params;
}

Result<std::vector<SeqValue>> DeriveMinoa(const Sequence& view,
                                          const WindowSpec& query) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  MinoaParams params;
  RFV_ASSIGN_OR_RETURN(params, PlanMinoa(view.spec(), query));
  const int64_t n = view.n();
  const int64_t first = view.first_pos();

  std::vector<SeqValue> y(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    SeqValue v = 0;
    // Positive chain: head right-justified with the query window's upper
    // bound, stepped down by w_x.
    for (int64_t p = k + params.delta_h; p >= first; p -= params.wx) {
      v += view.at(p);
    }
    // Negative chain: fills (−∞, k−l_y−1].
    for (int64_t p = k - params.delta_l - params.wx; p >= first;
         p -= params.wx) {
      v -= view.at(p);
    }
    y[static_cast<size_t>(k - 1)] = v;
  }
  return y;
}

Result<std::vector<SeqValue>> RawFromSliding(const Sequence& view) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  const int64_t n = view.n();
  const int64_t h = view.spec().h();
  const int64_t w = view.spec().size();
  const int64_t first = view.first_pos();
  std::vector<SeqValue> x(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    SeqValue v = 0;
    // x_k = Σ_{i>=0} ( x̃_{k−h−i·w} − x̃_{k−h−1−i·w} ); the chain stops
    // once both positions fall left of the header.
    for (int64_t p = k - h; p >= first; p -= w) {
      v += view.at(p) - view.at(p - 1);
    }
    x[static_cast<size_t>(k - 1)] = v;
  }
  return x;
}

Result<std::vector<SeqValue>> RawFromSlidingLinear(const Sequence& view) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  const int64_t n = view.n();
  const int64_t h = view.spec().h();
  const int64_t w = view.spec().size();
  std::vector<SeqValue> x(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    // Neighbor relationship x̃_{k−h} − x̃_{k−h−1} = x_k − x_{k−w}
    // (both windows differ in exactly those two raw values).
    const SeqValue prev =
        k - w >= 1 ? x[static_cast<size_t>(k - w - 1)] : 0;
    x[static_cast<size_t>(k - 1)] =
        prev + view.at(k - h) - view.at(k - h - 1);
  }
  return x;
}

Result<std::vector<SeqValue>> CumulativeFromSliding(const Sequence& view) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  const int64_t n = view.n();
  const int64_t h = view.spec().h();
  const int64_t w = view.spec().size();
  std::vector<SeqValue> c(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    // c_k covers (−∞, k]: the positive MinOA chain with h_y = 0. Reuse
    // c_{k−w} (covers (−∞, k−w]; zero when k−w < 1 since raw values
    // left of position 1 are zero) and add the window ending at k.
    const SeqValue prev = k - w >= 1 ? c[static_cast<size_t>(k - w - 1)] : 0;
    c[static_cast<size_t>(k - 1)] = prev + view.at(k - h);
  }
  return c;
}

}  // namespace rfv
