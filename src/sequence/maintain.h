#ifndef RFVIEW_SEQUENCE_MAINTAIN_H_
#define RFVIEW_SEQUENCE_MAINTAIN_H_

#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace rfv {

/// Incremental maintenance of materialized sliding-window sequences
/// (paper §2.3): under UPDATE/INSERT/DELETE of a single raw value only
/// the sequence positions whose window touches the modified position
/// change — w = l+h+1 positions — instead of recomputing the whole
/// sequence.
///
/// All functions mutate both the raw data vector (x[0] is position 1)
/// and the complete sequence in place, keeping header/trailer intact,
/// and return the number of sequence positions recomputed (the paper's
/// locality claim, used by tests and the A2 ablation bench).
///
/// The update rule for SUM at position k (x_k → x'_k) is
///   x̃'_i = x̃_i + (x'_k − x_k)   for k-h <= i <= k+l,  unchanged otherwise.
/// Insert of value v at position k (old values at >= k shift right):
///   x̃'_i = x̃_i                    for i < k-h,
///   x̃'_i = v + x̃_i − x_{i+h}      for k-h <= i <= k+l   (old x̃, old x),
///   x̃'_i = x̃_{i-1}                for i > k+l.
/// Delete of position k (old values at > k shift left):
///   x̃'_i = x̃_i                    for i < k-h,
///   x̃'_i = x̃_i − x_k + x_{i+h+1}  for k-h <= i < k+l    (old x̃, old x),
///   x̃'_i = x̃_{i+1}                for i >= k+l.
/// (Derived from first principles; the scanned paper's insert/delete
/// formulas are OCR-damaged. Property tests validate every rule against
/// full recomputation.)
///
/// MIN/MAX sequences are maintained by recomputing the w affected
/// windows with a monotonic deque (the paper's footnote covers only the
/// monotone-improvement case min(x̃_i, x'_k); a value update that
/// *removes* the extreme requires the window recompute).

/// Errors: kInvalidArgument for k outside [1, n] (insert allows n+1 =
/// append).
Result<size_t> MaintainUpdate(std::vector<SeqValue>* x, Sequence* seq,
                              int64_t k, SeqValue new_value);
Result<size_t> MaintainInsert(std::vector<SeqValue>* x, Sequence* seq,
                              int64_t k, SeqValue value);
Result<size_t> MaintainDelete(std::vector<SeqValue>* x, Sequence* seq,
                              int64_t k);

/// Cumulative-sequence maintenance: an update at k adds the delta to all
/// positions >= k (O(n-k)); insert/delete additionally shift. Returned
/// count is the number of positions written.
Result<size_t> MaintainCumulativeUpdate(std::vector<SeqValue>* x,
                                        Sequence* seq, int64_t k,
                                        SeqValue new_value);

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_MAINTAIN_H_
