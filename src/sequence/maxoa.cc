#include "sequence/maxoa.h"

#include <algorithm>

#include "common/logging.h"

namespace rfv {

namespace {

Status ValidateView(const Sequence& view) {
  if (!view.spec().is_sliding()) {
    return Status::InvalidArgument("MaxOA requires a sliding-window view");
  }
  if (!view.IsComplete()) {
    return Status::NotDerivable(
        "MaxOA requires a complete view sequence (header/trailer)");
  }
  return Status::OK();
}

}  // namespace

Result<MaxoaParams> PlanMaxoa(const WindowSpec& view,
                              const WindowSpec& query) {
  if (!view.is_sliding() || !query.is_sliding()) {
    return Status::NotDerivable("MaxOA requires sliding windows");
  }
  MaxoaParams params;
  params.delta_l = query.l() - view.l();
  params.delta_h = query.h() - view.h();
  if (params.delta_l < 0 || params.delta_h < 0) {
    return Status::NotDerivable(
        "MaxOA requires the query window to contain the view window "
        "(coverage factors must be non-negative)");
  }
  const int64_t wx_minus_1 = view.l() + view.h();
  if (params.delta_l > wx_minus_1 - 1 || params.delta_h > wx_minus_1 - 1) {
    // Paper precondition l_y <= h−1+2·l_x ⇔ Δl <= l_x+h_x−1 (and the
    // mirrored condition for the upper side).
    return Status::NotDerivable(
        "MaxOA precondition violated: query window more than twice the "
        "view window on one side");
  }
  params.delta_p = 1 + view.l() + view.h() - params.delta_l;
  params.delta_q = 1 + view.l() + view.h() - params.delta_h;
  return params;
}

Result<std::vector<SeqValue>> DeriveMaxoaRecursive(const Sequence& view,
                                                   const WindowSpec& query) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  if (view.fn() != SeqAggFn::kSum) {
    return Status::NotDerivable(
        "MaxOA SUM derivation requires a SUM view (use DeriveMaxoaMinMax)");
  }
  MaxoaParams params;
  RFV_ASSIGN_OR_RETURN(params, PlanMaxoa(view.spec(), query));
  const int64_t n = view.n();
  const int64_t hx = view.spec().h();
  const int64_t lx = view.spec().l();

  // Left compensation z̃L (type (l_x, h_x−Δl)):
  //   z̃L_k = x̃_{k−Δl} − x̃_{k−(Δl+Δp)} + z̃L_{k−(Δl+Δp)},
  // zero while the compensation window lies left of the data
  // (k <= Δl − h_x).
  std::vector<SeqValue> zl;
  int64_t zl_first = 0;
  if (params.delta_l > 0) {
    const int64_t step = params.delta_l + params.delta_p;
    zl_first = params.delta_l - hx + 1;
    const int64_t zl_last = n;
    zl.assign(static_cast<size_t>(std::max<int64_t>(zl_last - zl_first + 1, 0)),
              0);
    for (int64_t k = zl_first; k <= zl_last; ++k) {
      const int64_t prev = k - step;
      const SeqValue prev_z =
          prev >= zl_first ? zl[static_cast<size_t>(prev - zl_first)] : 0;
      zl[static_cast<size_t>(k - zl_first)] =
          view.at(k - params.delta_l) - view.at(k - step) + prev_z;
    }
  }

  // Right compensation z̃H (type (l_x−Δh, h_x)):
  //   z̃H_k = x̃_{k+Δh} − x̃_{k+(Δh+Δq)} + z̃H_{k+(Δh+Δq)},
  // zero once the compensation window lies right of the data
  // (k > n + l_x − Δh).
  std::vector<SeqValue> zh;
  int64_t zh_first = 1;
  int64_t zh_last = 0;
  if (params.delta_h > 0) {
    const int64_t step = params.delta_h + params.delta_q;
    zh_first = 1;
    zh_last = n + lx - params.delta_h;
    zh.assign(static_cast<size_t>(std::max<int64_t>(zh_last - zh_first + 1, 0)),
              0);
    for (int64_t k = zh_last; k >= zh_first; --k) {
      const int64_t next = k + step;
      const SeqValue next_z =
          next <= zh_last ? zh[static_cast<size_t>(next - zh_first)] : 0;
      zh[static_cast<size_t>(k - zh_first)] =
          view.at(k + params.delta_h) - view.at(k + step) + next_z;
    }
  }

  std::vector<SeqValue> y(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    SeqValue v = view.at(k);
    if (params.delta_l > 0) {
      const SeqValue z =
          (k >= zl_first && k <= n) ? zl[static_cast<size_t>(k - zl_first)] : 0;
      v += view.at(k - params.delta_l) - z;
    }
    if (params.delta_h > 0) {
      const SeqValue z = (k >= zh_first && k <= zh_last)
                             ? zh[static_cast<size_t>(k - zh_first)]
                             : 0;
      v += view.at(k + params.delta_h) - z;
    }
    y[static_cast<size_t>(k - 1)] = v;
  }
  return y;
}

Result<std::vector<SeqValue>> DeriveMaxoaExplicit(const Sequence& view,
                                                  const WindowSpec& query) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  if (view.fn() != SeqAggFn::kSum) {
    return Status::NotDerivable(
        "MaxOA SUM derivation requires a SUM view (use DeriveMaxoaMinMax)");
  }
  MaxoaParams params;
  RFV_ASSIGN_OR_RETURN(params, PlanMaxoa(view.spec(), query));
  const int64_t n = view.n();
  const int64_t first = view.first_pos();
  const int64_t last = view.last_pos();

  std::vector<SeqValue> y(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    SeqValue v = view.at(k);
    if (params.delta_l > 0) {
      const int64_t step = params.delta_l + params.delta_p;
      for (int64_t i = 1;; ++i) {
        const int64_t plus = k - i * step;            // x̃_{k−i(Δl+Δp)}
        const int64_t minus = plus - params.delta_l;  // x̃_{k−Δl−i(Δl+Δp)}
        if (plus < first) break;  // both terms vanish from here on
        v += view.at(plus) - view.at(minus);
      }
    }
    if (params.delta_h > 0) {
      const int64_t step = params.delta_h + params.delta_q;
      for (int64_t i = 1;; ++i) {
        const int64_t plus = k + i * step;            // x̃_{k+i(Δh+Δq)}
        const int64_t minus = plus + params.delta_h;  // x̃_{k+Δh+i(Δh+Δq)}
        if (plus > last) break;
        v += view.at(plus) - view.at(minus);
      }
    }
    y[static_cast<size_t>(k - 1)] = v;
  }
  return y;
}

Result<std::vector<SeqValue>> DeriveMaxoaMinMax(const Sequence& view,
                                                const WindowSpec& query) {
  RFV_RETURN_IF_ERROR(ValidateView(view));
  if (view.fn() != SeqAggFn::kMin && view.fn() != SeqAggFn::kMax) {
    return Status::InvalidArgument(
        "DeriveMaxoaMinMax requires a MIN or MAX view");
  }
  if (!query.is_sliding()) {
    return Status::NotDerivable("MIN/MAX derivation target must be sliding");
  }
  const int64_t delta_l = query.l() - view.spec().l();
  const int64_t delta_h = query.h() - view.spec().h();
  if (delta_l < 0 || delta_h < 0) {
    return Status::NotDerivable(
        "MIN/MAX derivation requires the query window to contain the view "
        "window");
  }
  // Coverage conditions. MIN/MAX windows clip at the data boundary (a
  // zero padding would corrupt extremes — see compute.cc), so both
  // covering view positions must stay inside the stored header/trailer
  // extent: Δl <= h_x and Δh <= l_x. These imply gap-freeness
  // (Δl + Δh <= l_x + h_x < l_x + h_x + 1); overlap of the two covering
  // windows is harmless — MIN/MAX are idempotent, which is exactly why
  // MaxOA handles them and the subtraction-based MinOA cannot.
  if (delta_l > view.spec().h() || delta_h > view.spec().l()) {
    return Status::NotDerivable(
        "MIN/MAX derivation would read past the view's header/trailer "
        "(requires delta_l <= h_x and delta_h <= l_x)");
  }
  const bool is_min = view.fn() == SeqAggFn::kMin;
  const int64_t n = view.n();
  std::vector<SeqValue> y(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    const SeqValue a = view.at(k - delta_l);
    const SeqValue b = view.at(k + delta_h);
    y[static_cast<size_t>(k - 1)] = is_min ? std::min(a, b) : std::max(a, b);
  }
  return y;
}

}  // namespace rfv
