#ifndef RFVIEW_SEQUENCE_SEQUENCE_H_
#define RFVIEW_SEQUENCE_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sequence/window_spec.h"

namespace rfv {

/// Value type of the sequence algebra. Sums of integer raw data stay
/// exact (doubles represent integers up to 2^53 exactly and the
/// algorithms only add/subtract), and AVG/derived statistics need
/// fractional values.
using SeqValue = double;

/// A materialized *complete* simple sequence (paper §2.1/§3.2): the
/// values x̃_k of window aggregates over raw data x_1..x_n, including the
/// header positions -h+1..0 and trailer positions n+1..n+l whose windows
/// still overlap [1, n]. Raw values outside [1, n] are zero, so every
/// x̃_k outside the stored range is zero for SUM (and "no value" for
/// MIN/MAX).
///
/// Completeness is exactly what the derivation algorithms (§4 MaxOA,
/// §5 MinOA) require: without header and trailer the boundary values of
/// a derived sequence are unrecoverable.
class Sequence {
 public:
  /// Builds a sequence from values stored for positions
  /// [first_pos, first_pos + values.size() - 1]. `n` is the raw-data
  /// cardinality. Use compute.h factories instead of calling this
  /// directly.
  Sequence(WindowSpec spec, SeqAggFn fn, int64_t n, int64_t first_pos,
           std::vector<SeqValue> values)
      : spec_(spec),
        fn_(fn),
        n_(n),
        first_pos_(first_pos),
        values_(std::move(values)) {}

  const WindowSpec& spec() const { return spec_; }
  SeqAggFn fn() const { return fn_; }
  /// Raw-data cardinality n.
  int64_t n() const { return n_; }

  /// Lowest / highest stored position (header start / trailer end).
  int64_t first_pos() const { return first_pos_; }
  int64_t last_pos() const {
    return first_pos_ + static_cast<int64_t>(values_.size()) - 1;
  }

  /// Sequence value at position k; 0 outside the stored range (the SUM
  /// of an empty window — callers working with MIN/MAX must stay inside
  /// the stored range, which derivations for MIN/MAX do by construction).
  SeqValue at(int64_t k) const {
    if (k < first_pos() || k > last_pos()) return 0;
    return values_[static_cast<size_t>(k - first_pos_)];
  }

  /// True when [first_pos, last_pos] covers the full header/trailer
  /// extent of the window spec (paper Definition "Complete Simple
  /// Sequence").
  bool IsComplete() const;

  /// Mutable access for incremental maintenance (sequence/maintain.*).
  std::vector<SeqValue>* mutable_values() { return &values_; }
  void set_n(int64_t n) { n_ = n; }
  void set_first_pos(int64_t first_pos) { first_pos_ = first_pos; }

  /// Values on the query range [1, n] only (test convenience).
  std::vector<SeqValue> BodyValues() const;

  std::string ToString() const;

 private:
  WindowSpec spec_;
  SeqAggFn fn_;
  int64_t n_;
  int64_t first_pos_;
  std::vector<SeqValue> values_;
};

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_SEQUENCE_H_
