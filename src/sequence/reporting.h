#ifndef RFVIEW_SEQUENCE_REPORTING_H_
#define RFVIEW_SEQUENCE_REPORTING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace rfv {

/// Position function over a dense multi-column linear ordering (paper
/// §6, Definition "Position Function"): pos: Nⁿ → N maps an ordering
/// coordinate tuple (k_1, ..., k_n), each k_i in [1, c_i], to its global
/// 1-based position in lexicographic order. For n = 1 this is the
/// identity, matching the paper's "for n = 1, pos is equivalent to
/// id()".
class PositionSpace {
 public:
  /// `cardinalities` are the per-column domain sizes c_1..c_n (most
  /// significant first).
  explicit PositionSpace(std::vector<int64_t> cardinalities);

  size_t num_columns() const { return cardinalities_.size(); }
  int64_t cardinality(size_t i) const { return cardinalities_[i]; }

  /// Total number of positions (Π c_i).
  int64_t total() const { return total_; }

  /// Global position of a coordinate tuple. Errors: kInvalidArgument for
  /// wrong arity or out-of-domain coordinates.
  Result<int64_t> pos(const std::vector<int64_t>& coords) const;

  /// Inverse of pos(). Errors: kInvalidArgument for k outside
  /// [1, total()].
  Result<std::vector<int64_t>> coords(int64_t k) const;

 private:
  std::vector<int64_t> cardinalities_;
  std::vector<int64_t> strides_;  ///< positions per unit step of column i
  int64_t total_;
};

/// Ordering reduction (paper §6.1): derive a reporting sequence ordered
/// by the prefix (k_1, ..., k_{n-j}) from one ordered by (k_1, ..., k_n).
/// Dropping the right-most j ordering columns collapses each block of
/// Π_{i>n-j} c_i fine positions into one coarse position; the lemma's
/// window bounds
///   w'_L(k) = k − pos((k_1..k_{n-j}) − 1, 1, ..., 1)
///   w'_H(k) = pos((k_1..k_{n-j}) + 1, 1, ..., 1) − k − 1
/// select exactly that block.
///
/// `fine_cumulative` holds the cumulative (SUM) sequence over the full
/// fine position order (values for global positions 1..total()).
/// Returns the cumulative sequence of the coarse ordering (one value per
/// coarse block, in coarse order) — the "first sequence entry of ỹ with
/// regard to the remaining ordering columns" per the lemma.
/// Errors: kInvalidArgument for j outside [1, n-1] or a wrong-sized
/// value vector.
Result<std::vector<SeqValue>> OrderingReductionCumulative(
    const PositionSpace& space, const std::vector<SeqValue>& fine_cumulative,
    size_t j);

/// Per-block totals under ordering reduction (collapsing j columns):
/// block_sum[b] = fine_cum[block end] − fine_cum[block start − 1]. This
/// is the raw data of the coarse sequence, from which any coarse window
/// follows.
Result<std::vector<SeqValue>> OrderingReductionBlockTotals(
    const PositionSpace& space, const std::vector<SeqValue>& fine_cumulative,
    size_t j);

/// A reporting sequence with a partitioning scheme (paper §6,
/// Definition "Reporting Sequences"): one complete simple sequence per
/// partition, keyed by the partition column values, in partition order.
/// The sequence is a *complete reporting function* when every partition
/// sequence is complete (paper §6.2) — the prerequisite for
/// partitioning reduction.
class PartitionedSequence {
 public:
  struct Partition {
    std::vector<int64_t> key;  ///< partition column values
    std::vector<SeqValue> raw; ///< raw data of this partition
    Sequence sequence;
  };

  PartitionedSequence(WindowSpec spec, SeqAggFn fn)
      : spec_(spec), fn_(fn) {}

  const WindowSpec& spec() const { return spec_; }
  SeqAggFn fn() const { return fn_; }

  /// Adds a partition (keys must arrive in ascending partition order).
  /// The complete sequence is computed from the raw data.
  Status AddPartition(std::vector<int64_t> key, std::vector<SeqValue> raw);

  size_t num_partitions() const { return partitions_.size(); }
  const Partition& partition(size_t i) const { return partitions_[i]; }

  /// True when every partition sequence is complete (paper Definition
  /// "Complete Reporting Function").
  bool IsComplete() const;

  /// Partitioning reduction (paper §6.2 lemma): derive the reporting
  /// sequence with the right-most `drop` partition columns removed.
  /// Partitions sharing the remaining key prefix merge: their raw data
  /// is reconstructed from the complete partition sequences (possible
  /// exactly because the reporting function is complete), concatenated
  /// in partition order, and re-sequenced under the same window spec.
  /// Errors: kNotDerivable when the reporting function is not complete,
  /// kInvalidArgument for drop counts outside [1, #partition columns].
  Result<PartitionedSequence> ReducePartitioning(size_t drop) const;

 private:
  WindowSpec spec_;
  SeqAggFn fn_;
  std::vector<Partition> partitions_;
};

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_REPORTING_H_
