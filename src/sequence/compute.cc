#include "sequence/compute.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace rfv {

namespace {

/// Raw value accessor with the paper's convention x_i = 0 outside [1, n].
inline SeqValue RawAt(const std::vector<SeqValue>& x, int64_t i) {
  if (i < 1 || i > static_cast<int64_t>(x.size())) return 0;
  return x[static_cast<size_t>(i - 1)];
}

}  // namespace

std::vector<SeqValue> ComputeSlidingNaive(const std::vector<SeqValue>& x,
                                          const WindowSpec& spec) {
  RFV_CHECK(spec.is_sliding());
  const int64_t n = static_cast<int64_t>(x.size());
  std::vector<SeqValue> out(static_cast<size_t>(n), 0);
  for (int64_t k = 1; k <= n; ++k) {
    SeqValue sum = 0;
    for (int64_t i = k - spec.l(); i <= k + spec.h(); ++i) {
      sum += RawAt(x, i);
    }
    out[static_cast<size_t>(k - 1)] = sum;
  }
  return out;
}

std::vector<SeqValue> ComputeSlidingPipelined(const std::vector<SeqValue>& x,
                                              const WindowSpec& spec) {
  RFV_CHECK(spec.is_sliding());
  const int64_t n = static_cast<int64_t>(x.size());
  std::vector<SeqValue> out(static_cast<size_t>(n), 0);
  if (n == 0) return out;
  // Seed x̃_1 explicitly, then apply x̃_k = x̃_{k-1} + x_{k+h} - x_{k-l-1}.
  SeqValue running = 0;
  for (int64_t i = 1 - spec.l(); i <= 1 + spec.h(); ++i) {
    running += RawAt(x, i);
  }
  out[0] = running;
  for (int64_t k = 2; k <= n; ++k) {
    running += RawAt(x, k + spec.h()) - RawAt(x, k - spec.l() - 1);
    out[static_cast<size_t>(k - 1)] = running;
  }
  return out;
}

std::vector<SeqValue> ComputeCumulative(const std::vector<SeqValue>& x) {
  std::vector<SeqValue> out(x.size(), 0);
  SeqValue running = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    running += x[i];
    out[i] = running;
  }
  return out;
}

std::vector<SeqValue> ComputeSlidingMinMax(const std::vector<SeqValue>& x,
                                           const WindowSpec& spec,
                                           bool is_min) {
  RFV_CHECK(spec.is_sliding());
  const int64_t n = static_cast<int64_t>(x.size());
  std::vector<SeqValue> out(static_cast<size_t>(n), 0);
  // Monotonic deque of (position, value); front is the window extreme.
  // MIN/MAX windows are clipped to [1, n] (SQL frame semantics): unlike
  // SUM, the zero padding of out-of-range positions would corrupt the
  // extreme instead of being neutral.
  std::deque<std::pair<int64_t, SeqValue>> mono;
  int64_t next = std::max<int64_t>(1 - spec.l(), 1);  // next position to admit
  for (int64_t k = 1; k <= n; ++k) {
    const int64_t hi = std::min(k + spec.h(), n);
    const int64_t lo = k - spec.l();
    for (; next <= hi; ++next) {
      const SeqValue v = RawAt(x, next);
      while (!mono.empty() &&
             (is_min ? mono.back().second >= v : mono.back().second <= v)) {
        mono.pop_back();
      }
      mono.emplace_back(next, v);
    }
    while (!mono.empty() && mono.front().first < lo) mono.pop_front();
    RFV_CHECK(!mono.empty());
    out[static_cast<size_t>(k - 1)] = mono.front().second;
  }
  return out;
}

Sequence BuildCompleteSequence(const std::vector<SeqValue>& x,
                               const WindowSpec& spec, SeqAggFn fn) {
  const int64_t n = static_cast<int64_t>(x.size());
  if (spec.is_cumulative()) {
    std::vector<SeqValue> values;
    if (fn == SeqAggFn::kSum) {
      values = ComputeCumulative(x);
    } else {
      // Running MIN/MAX.
      values.assign(x.size(), 0);
      SeqValue extreme = 0;
      for (size_t i = 0; i < x.size(); ++i) {
        if (i == 0) {
          extreme = x[i];
        } else if (fn == SeqAggFn::kMin) {
          extreme = std::min(extreme, x[i]);
        } else {
          extreme = std::max(extreme, x[i]);
        }
        values[i] = extreme;
      }
    }
    return Sequence(spec, fn, n, 1, std::move(values));
  }

  // Sliding: compute over the extended range [-h+1, n+l] by treating the
  // extended positions as a longer raw array shifted so everything is
  // 1-based.
  if (n == 0) {
    return Sequence(spec, fn, 0, 1, {});
  }
  const int64_t first = -spec.h() + 1;
  const int64_t last = n + spec.l();
  const int64_t count = last - first + 1;
  std::vector<SeqValue> values(static_cast<size_t>(std::max<int64_t>(count, 0)),
                               0);
  if (fn == SeqAggFn::kSum) {
    // Pipelined sweep across the extended range.
    SeqValue running = 0;
    for (int64_t i = first - spec.l(); i <= first + spec.h(); ++i) {
      running += RawAt(x, i);
    }
    if (count > 0) values[0] = running;
    for (int64_t k = first + 1; k <= last; ++k) {
      running += RawAt(x, k + spec.h()) - RawAt(x, k - spec.l() - 1);
      values[static_cast<size_t>(k - first)] = running;
    }
  } else {
    // MIN/MAX windows are clipped to [1, n] (SQL frame semantics; the
    // SUM-style zero padding would corrupt extremes). Every header and
    // trailer position still has a non-empty clipped window — that is
    // precisely the definition of the header/trailer extent.
    const bool is_min = fn == SeqAggFn::kMin;
    std::deque<std::pair<int64_t, SeqValue>> mono;
    int64_t next = 1;
    for (int64_t k = first; k <= last; ++k) {
      const int64_t hi = std::min(k + spec.h(), n);
      const int64_t lo = k - spec.l();
      for (; next <= hi; ++next) {
        const SeqValue v = RawAt(x, next);
        while (!mono.empty() &&
               (is_min ? mono.back().second >= v : mono.back().second <= v)) {
          mono.pop_back();
        }
        mono.emplace_back(next, v);
      }
      while (!mono.empty() && mono.front().first < lo) mono.pop_front();
      RFV_CHECK(!mono.empty());
      values[static_cast<size_t>(k - first)] = mono.front().second;
    }
  }
  return Sequence(spec, fn, n, first, std::move(values));
}

}  // namespace rfv
