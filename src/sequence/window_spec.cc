#include "sequence/window_spec.h"

namespace rfv {

const char* SeqAggFnName(SeqAggFn fn) {
  switch (fn) {
    case SeqAggFn::kSum: return "SUM";
    case SeqAggFn::kMin: return "MIN";
    case SeqAggFn::kMax: return "MAX";
  }
  return "?";
}

Result<WindowSpec> WindowSpec::Sliding(int64_t l, int64_t h) {
  if (l < 0 || h < 0) {
    return Status::InvalidArgument(
        "sliding window bounds must be non-negative, got l=" +
        std::to_string(l) + ", h=" + std::to_string(h));
  }
  if (l + h == 0) {
    return Status::InvalidArgument(
        "sliding window must span more than the current row (l + h > 0)");
  }
  return SlidingUnchecked(l, h);
}

std::string WindowSpec::ToString() const {
  if (is_cumulative()) return "CUMULATIVE";
  std::string out = "(";
  out += std::to_string(l_);
  out += ',';
  out += std::to_string(h_);
  out += ')';
  return out;
}

}  // namespace rfv
