#ifndef RFVIEW_SEQUENCE_WINDOW_SPEC_H_
#define RFVIEW_SEQUENCE_WINDOW_SPEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace rfv {

/// Aggregation functions of the sequence algebra (paper §2.1). COUNT is
/// "trivial (either constant or the current position)" and AVG "may be
/// directly derived from SUM and COUNT", so the derivation algorithms
/// operate on SUM and the semi-algebraic MIN/MAX; AVG support is layered
/// on top (see rewrite/derivability.*).
enum class SeqAggFn { kSum, kMin, kMax };

const char* SeqAggFnName(SeqAggFn fn);

/// The window of a simple sequence (paper §2.1, Definition "Simple
/// Sequence"). Two shapes:
///  * cumulative: w_L(k) = 0, w_H(k) = k — value k aggregates x_1..x_k;
///  * sliding (l, h): w_L(k) = k-l, w_H(k) = k+h with l, h >= 0 and
///    l + h > 0 (the paper's footnote assumption).
class WindowSpec {
 public:
  enum class Kind { kCumulative, kSliding };

  /// Cumulative window (Year-To-Date style).
  static WindowSpec Cumulative() { return WindowSpec(Kind::kCumulative, 0, 0); }

  /// Sliding window; pre-validated factory. Errors: kInvalidArgument for
  /// l < 0, h < 0 or l + h == 0.
  static Result<WindowSpec> Sliding(int64_t l, int64_t h);

  /// Sliding window; precondition-checked (crashes on invalid input).
  /// Use in tests and literals where invalid specs are bugs.
  static WindowSpec SlidingUnchecked(int64_t l, int64_t h) {
    return WindowSpec(Kind::kSliding, l, h);
  }

  Kind kind() const { return kind_; }
  bool is_cumulative() const { return kind_ == Kind::kCumulative; }
  bool is_sliding() const { return kind_ == Kind::kSliding; }

  /// Preceding extent l (sliding only).
  int64_t l() const { return l_; }
  /// Following extent h (sliding only).
  int64_t h() const { return h_; }

  /// Window size w = 1 + l + h (sliding; paper W(k) = 1+l+h).
  int64_t size() const { return 1 + l_ + h_; }

  bool operator==(const WindowSpec& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kCumulative) return true;
    return l_ == other.l_ && h_ == other.h_;
  }
  bool operator!=(const WindowSpec& other) const { return !(*this == other); }

  /// "(l,h)" or "CUMULATIVE".
  std::string ToString() const;

 private:
  WindowSpec(Kind kind, int64_t l, int64_t h) : kind_(kind), l_(l), h_(h) {}

  Kind kind_;
  int64_t l_;
  int64_t h_;
};

}  // namespace rfv

#endif  // RFVIEW_SEQUENCE_WINDOW_SPEC_H_
