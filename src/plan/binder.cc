#include "plan/binder.h"

#include <optional>

#include "common/logging.h"
#include "common/str_util.h"
#include "expr/builder.h"
#include "expr/type_check.h"

namespace rfv {

namespace {

/// Collects aggregate-function AST nodes (no OVER clause) without
/// descending into them, and window-function nodes (with OVER clause)
/// without descending into them.
void CollectCalls(const AstExpr& ast,
                  std::vector<const AstExpr*>* aggregates,
                  std::vector<const AstExpr*>* windows) {
  if (ast.kind == AstExprKind::kFunctionCall) {
    if (ast.over != nullptr) {
      if (windows != nullptr) windows->push_back(&ast);
      return;  // window arguments/spec are bound separately
    }
    const std::string upper = ToUpper(ast.function_name);
    if (upper == "SUM" || upper == "COUNT" || upper == "AVG" ||
        upper == "MIN" || upper == "MAX") {
      if (aggregates != nullptr) aggregates->push_back(&ast);
      return;  // aggregate arguments are bound separately
    }
  }
  for (const auto& child : ast.children) {
    CollectCalls(*child, aggregates, windows);
  }
}

/// Name for an output column derived from an expression: plain column
/// name for simple references, rendering otherwise.
std::string DerivedName(const AstExpr& ast) {
  if (ast.kind == AstExprKind::kColumn) return ast.name;
  return ast.ToString();
}

DataType AggOutputType(AggFn fn, DataType arg_type) {
  switch (fn) {
    case AggFn::kCount: return DataType::kInt64;
    case AggFn::kAvg: return DataType::kDouble;
    case AggFn::kSum:
      return arg_type == DataType::kDouble ? DataType::kDouble
                                           : DataType::kInt64;
    case AggFn::kMin:
    case AggFn::kMax: return arg_type;
  }
  return DataType::kDouble;
}

/// Converts a parsed frame bound pair into the normalized WindowFrame.
Result<WindowFrame> NormalizeFrame(const WindowSpecAst& spec) {
  if (!spec.has_frame) {
    // SQL default: with ORDER BY, UNBOUNDED PRECEDING .. CURRENT ROW;
    // without, the whole partition.
    if (spec.order_by.empty()) return WindowFrame::WholePartition();
    return WindowFrame::Cumulative();
  }
  WindowFrame frame;
  const auto bound_to_offset = [](const FrameBound& b, bool* unbounded,
                                  int64_t* offset) -> Status {
    switch (b.kind) {
      case FrameBound::Kind::kUnboundedPreceding:
      case FrameBound::Kind::kUnboundedFollowing:
        *unbounded = true;
        *offset = 0;
        return Status::OK();
      case FrameBound::Kind::kPreceding:
        *unbounded = false;
        *offset = -b.offset;
        return Status::OK();
      case FrameBound::Kind::kCurrentRow:
        *unbounded = false;
        *offset = 0;
        return Status::OK();
      case FrameBound::Kind::kFollowing:
        *unbounded = false;
        *offset = b.offset;
        return Status::OK();
    }
    return Status::Internal("bad frame bound");
  };
  if (spec.frame_lo.kind == FrameBound::Kind::kUnboundedFollowing ||
      spec.frame_hi.kind == FrameBound::Kind::kUnboundedPreceding) {
    return Status::BindError("malformed window frame");
  }
  RFV_RETURN_IF_ERROR(
      bound_to_offset(spec.frame_lo, &frame.lo_unbounded, &frame.lo));
  RFV_RETURN_IF_ERROR(
      bound_to_offset(spec.frame_hi, &frame.hi_unbounded, &frame.hi));
  if (!frame.lo_unbounded && !frame.hi_unbounded && frame.lo > frame.hi) {
    return Status::BindError("window frame lower bound above upper bound");
  }
  frame.range_mode = spec.range_mode;
  return frame;
}

}  // namespace

std::optional<AggFn> Binder::AggFnByName(const std::string& upper_name) {
  if (upper_name == "SUM") return AggFn::kSum;
  if (upper_name == "COUNT") return AggFn::kCount;
  if (upper_name == "AVG") return AggFn::kAvg;
  if (upper_name == "MIN") return AggFn::kMin;
  if (upper_name == "MAX") return AggFn::kMax;
  return std::nullopt;
}

Result<ExprPtr> Binder::BindScalar(const AstExpr& ast, const Schema& schema) {
  BindEnv env;
  env.schema = &schema;
  return BindAndCheck(ast, env);
}

Result<ExprPtr> Binder::BindAndCheck(const AstExpr& ast, const BindEnv& env) {
  ExprPtr expr;
  RFV_ASSIGN_OR_RETURN(expr, BindExpr(ast, env));
  RFV_RETURN_IF_ERROR(CheckTypes(expr.get(), *env.schema));
  return expr;
}

Result<ExprPtr> Binder::BindExpr(const AstExpr& ast, const BindEnv& env) {
  // Substitutions first: a subtree that names an output column of a lower
  // aggregate/window node becomes a plain column reference.
  if (env.node_replacements != nullptr) {
    const auto it = env.node_replacements->find(&ast);
    if (it != env.node_replacements->end()) {
      return eb::Col(it->second, env.schema->column(it->second).type,
                     env.schema->column(it->second).name);
    }
  }
  if (env.text_replacements != nullptr) {
    const auto it = env.text_replacements->find(ast.ToString());
    if (it != env.text_replacements->end()) {
      return eb::Col(it->second, env.schema->column(it->second).type,
                     env.schema->column(it->second).name);
    }
  }

  switch (ast.kind) {
    case AstExprKind::kLiteral:
      return eb::Lit(ast.literal);
    case AstExprKind::kStar:
      return Status::BindError("'*' is only valid inside COUNT(*)");
    case AstExprKind::kColumn: {
      Result<size_t> idx = env.schema->FindColumn(ast.qualifier, ast.name);
      if (!idx.ok()) {
        if (idx.status().code() == StatusCode::kNotFound) {
          return Status::BindError(idx.status().message());
        }
        return idx.status();
      }
      return eb::Col(*idx, env.schema->column(*idx).type,
                     env.schema->column(*idx).QualifiedName());
    }
    case AstExprKind::kUnary: {
      ExprPtr operand;
      RFV_ASSIGN_OR_RETURN(operand, BindExpr(*ast.children[0], env));
      return eb::Unary(
          ast.unary_op == AstUnaryOp::kNot ? UnaryOp::kNot : UnaryOp::kNeg,
          std::move(operand));
    }
    case AstExprKind::kBinary: {
      ExprPtr lhs;
      RFV_ASSIGN_OR_RETURN(lhs, BindExpr(*ast.children[0], env));
      ExprPtr rhs;
      RFV_ASSIGN_OR_RETURN(rhs, BindExpr(*ast.children[1], env));
      if (ast.binary_op == AstBinaryOp::kMod) {
        return eb::Mod(std::move(lhs), std::move(rhs));
      }
      BinaryOp op;
      switch (ast.binary_op) {
        case AstBinaryOp::kAdd: op = BinaryOp::kAdd; break;
        case AstBinaryOp::kSub: op = BinaryOp::kSub; break;
        case AstBinaryOp::kMul: op = BinaryOp::kMul; break;
        case AstBinaryOp::kDiv: op = BinaryOp::kDiv; break;
        case AstBinaryOp::kEq: op = BinaryOp::kEq; break;
        case AstBinaryOp::kNe: op = BinaryOp::kNe; break;
        case AstBinaryOp::kLt: op = BinaryOp::kLt; break;
        case AstBinaryOp::kLe: op = BinaryOp::kLe; break;
        case AstBinaryOp::kGt: op = BinaryOp::kGt; break;
        case AstBinaryOp::kGe: op = BinaryOp::kGe; break;
        case AstBinaryOp::kAnd: op = BinaryOp::kAnd; break;
        case AstBinaryOp::kOr: op = BinaryOp::kOr; break;
        default:
          return Status::Internal("unhandled binary op");
      }
      return eb::Binary(op, std::move(lhs), std::move(rhs));
    }
    case AstExprKind::kCase: {
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kCase;
      expr->has_else = ast.has_else;
      for (const auto& child : ast.children) {
        ExprPtr bound;
        RFV_ASSIGN_OR_RETURN(bound, BindExpr(*child, env));
        expr->children.push_back(std::move(bound));
      }
      return expr;
    }
    case AstExprKind::kFunctionCall: {
      const std::string upper = ToUpper(ast.function_name);
      if (ast.over != nullptr) {
        return Status::BindError(
            "window function " + upper +
            " is only allowed at the top level of a SELECT list");
      }
      if (AggFnByName(upper).has_value()) {
        return Status::BindError("aggregate function " + upper +
                                 " is not allowed in this context");
      }
      ScalarFn fn;
      if (upper == "MOD") {
        fn = ScalarFn::kMod;
      } else if (upper == "COALESCE") {
        fn = ScalarFn::kCoalesce;
      } else if (upper == "ABS") {
        fn = ScalarFn::kAbs;
      } else if (upper == "YEAR") {
        fn = ScalarFn::kYear;
      } else if (upper == "MONTH") {
        fn = ScalarFn::kMonth;
      } else if (upper == "DAY") {
        fn = ScalarFn::kDay;
      } else if (upper == "LEAST") {
        fn = ScalarFn::kMin2;
      } else if (upper == "GREATEST") {
        fn = ScalarFn::kMax2;
      } else {
        return Status::BindError("unknown function " + upper);
      }
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kFunction;
      expr->function = fn;
      for (const auto& child : ast.children) {
        ExprPtr bound;
        RFV_ASSIGN_OR_RETURN(bound, BindExpr(*child, env));
        expr->children.push_back(std::move(bound));
      }
      return expr;
    }
    case AstExprKind::kIn: {
      auto inner = std::make_unique<Expr>();
      inner->kind = ExprKind::kIn;
      for (const auto& child : ast.children) {
        ExprPtr bound;
        RFV_ASSIGN_OR_RETURN(bound, BindExpr(*child, env));
        inner->children.push_back(std::move(bound));
      }
      inner->type = DataType::kBool;
      if (ast.negated) {
        return eb::Unary(UnaryOp::kNot, std::move(inner));
      }
      return inner;
    }
    case AstExprKind::kBetween: {
      ExprPtr subject;
      RFV_ASSIGN_OR_RETURN(subject, BindExpr(*ast.children[0], env));
      ExprPtr lo;
      RFV_ASSIGN_OR_RETURN(lo, BindExpr(*ast.children[1], env));
      ExprPtr hi;
      RFV_ASSIGN_OR_RETURN(hi, BindExpr(*ast.children[2], env));
      ExprPtr between =
          eb::Between(std::move(subject), std::move(lo), std::move(hi));
      if (ast.negated) {
        return eb::Unary(UnaryOp::kNot, std::move(between));
      }
      return between;
    }
    case AstExprKind::kIsNull: {
      ExprPtr operand;
      RFV_ASSIGN_OR_RETURN(operand, BindExpr(*ast.children[0], env));
      return eb::IsNull(std::move(operand), ast.negated);
    }
  }
  return Status::Internal("unreachable AST kind in binder");
}

Result<LogicalPlanPtr> Binder::BindTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      Result<Table*> table = catalog_->GetTable(ref.table_name);
      if (!table.ok()) return table.status();
      // Schema-qualified names (rfv_system.queries) default their alias
      // to the bare table part so column references qualify naturally
      // (queries.query_id, not rfv_system.queries.query_id).
      std::string alias = ToLower(ref.alias.empty() ? ref.table_name
                                                    : ref.alias);
      const size_t dot = alias.rfind('.');
      if (dot != std::string::npos) alias = alias.substr(dot + 1);
      return MakeScan(*table, alias);
    }
    case TableRef::Kind::kSubquery: {
      LogicalPlanPtr plan;
      RFV_ASSIGN_OR_RETURN(plan, BindSelect(*ref.subquery));
      plan->schema = plan->schema.WithQualifier(ToLower(ref.alias));
      return plan;
    }
    case TableRef::Kind::kJoin: {
      LogicalPlanPtr left;
      RFV_ASSIGN_OR_RETURN(left, BindTableRef(*ref.left));
      LogicalPlanPtr right;
      RFV_ASSIGN_OR_RETURN(right, BindTableRef(*ref.right));
      const Schema joined = Schema::Concat(left->schema, right->schema);
      ExprPtr condition;
      if (ref.on != nullptr) {
        BindEnv env;
        env.schema = &joined;
        RFV_ASSIGN_OR_RETURN(condition, BindAndCheck(*ref.on, env));
      }
      JoinType type;
      switch (ref.join_kind) {
        case TableRef::JoinKind::kInner: type = JoinType::kInner; break;
        case TableRef::JoinKind::kLeftOuter:
          type = JoinType::kLeftOuter;
          break;
        case TableRef::JoinKind::kCross: type = JoinType::kCross; break;
        default: return Status::Internal("bad join kind");
      }
      return MakeJoin(type, std::move(left), std::move(right),
                      std::move(condition));
    }
  }
  return Status::Internal("unreachable table ref kind");
}

Result<LogicalPlanPtr> Binder::BindSelectCore(const SelectStmt& stmt) {
  if (stmt.from == nullptr) {
    return Status::NotSupported("SELECT without FROM is not supported");
  }
  LogicalPlanPtr plan;
  RFV_ASSIGN_OR_RETURN(plan, BindTableRef(*stmt.from));

  // WHERE.
  if (stmt.where != nullptr) {
    std::vector<const AstExpr*> where_aggs;
    std::vector<const AstExpr*> where_windows;
    CollectCalls(*stmt.where, &where_aggs, &where_windows);
    if (!where_aggs.empty() || !where_windows.empty()) {
      return Status::BindError(
          "aggregate/window functions are not allowed in WHERE");
    }
    BindEnv env;
    env.schema = &plan->schema;
    ExprPtr predicate;
    RFV_ASSIGN_OR_RETURN(predicate, BindAndCheck(*stmt.where, env));
    plan = MakeFilter(std::move(plan), std::move(predicate));
  }

  // Discover aggregate and window calls in SELECT list and HAVING.
  std::vector<const AstExpr*> agg_nodes;
  std::vector<const AstExpr*> window_nodes;
  for (const SelectItem& item : stmt.select_list) {
    if (item.is_star) continue;
    CollectCalls(*item.expr, &agg_nodes, &window_nodes);
  }
  if (stmt.having != nullptr) {
    std::vector<const AstExpr*> having_windows;
    CollectCalls(*stmt.having, &agg_nodes, &having_windows);
    if (!having_windows.empty()) {
      return Status::BindError("window functions are not allowed in HAVING");
    }
  }

  std::map<std::string, size_t> text_replacements;
  std::map<const AstExpr*, size_t> node_replacements;

  // GROUP BY / aggregation.
  const bool need_aggregate = !stmt.group_by.empty() || !agg_nodes.empty();
  if (need_aggregate) {
    BindEnv input_env;
    input_env.schema = &plan->schema;

    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (const AstExprPtr& g : stmt.group_by) {
      ExprPtr bound;
      RFV_ASSIGN_OR_RETURN(bound, BindAndCheck(*g, input_env));
      group_names.push_back(DerivedName(*g));
      text_replacements[g->ToString()] = group_exprs.size();
      group_exprs.push_back(std::move(bound));
    }

    std::vector<AggregateCall> calls;
    for (const AstExpr* node : agg_nodes) {
      AggregateCall call;
      const std::optional<AggFn> fn = AggFnByName(ToUpper(node->function_name));
      RFV_CHECK(fn.has_value());
      call.fn = *fn;
      if (node->children.size() != 1) {
        return Status::BindError(std::string(AggFnName(*fn)) +
                                 " expects exactly one argument");
      }
      if (node->children[0]->kind == AstExprKind::kStar) {
        if (call.fn != AggFn::kCount) {
          return Status::BindError("'*' argument is only valid for COUNT");
        }
        call.is_count_star = true;
        call.output_type = DataType::kInt64;
      } else {
        RFV_ASSIGN_OR_RETURN(call.arg,
                             BindAndCheck(*node->children[0], input_env));
        if (call.fn != AggFn::kMin && call.fn != AggFn::kMax &&
            call.fn != AggFn::kCount && !(call.arg->type == DataType::kInt64 ||
                                          call.arg->type == DataType::kDouble ||
                                          call.arg->type == DataType::kNull)) {
          return Status::TypeError(std::string(AggFnName(call.fn)) +
                                   " requires a numeric argument");
        }
        call.output_type = AggOutputType(call.fn, call.arg->type);
      }
      call.output_name = node->ToString();
      node_replacements[node] = group_exprs.size() + calls.size();
      calls.push_back(std::move(call));
    }
    plan = MakeAggregate(std::move(plan), std::move(group_exprs),
                         std::move(group_names), std::move(calls));
  }

  // HAVING.
  if (stmt.having != nullptr) {
    if (!need_aggregate) {
      return Status::BindError("HAVING requires GROUP BY or aggregation");
    }
    BindEnv env;
    env.schema = &plan->schema;
    env.text_replacements = &text_replacements;
    env.node_replacements = &node_replacements;
    ExprPtr predicate;
    RFV_ASSIGN_OR_RETURN(predicate, BindAndCheck(*stmt.having, env));
    plan = MakeFilter(std::move(plan), std::move(predicate));
  }

  // Window (reporting) functions.
  if (!window_nodes.empty()) {
    BindEnv env;
    env.schema = &plan->schema;
    env.text_replacements = &text_replacements;
    env.node_replacements = &node_replacements;

    std::vector<WindowCall> calls;
    const size_t base = plan->schema.NumColumns();
    std::map<const AstExpr*, size_t> window_replacements;
    for (const AstExpr* node : window_nodes) {
      WindowCall call;
      const std::string upper = ToUpper(node->function_name);
      const std::optional<AggFn> fn = AggFnByName(upper);
      if (upper == "ROW_NUMBER" || upper == "RANK") {
        if (!node->children.empty()) {
          return Status::BindError(upper + " takes no arguments");
        }
        if (node->over->order_by.empty()) {
          return Status::BindError(upper + " requires ORDER BY in OVER()");
        }
        if (node->over->has_frame) {
          return Status::BindError(upper + " does not accept a frame");
        }
        call.kind = upper == "RANK" ? WindowFnKind::kRank
                                    : WindowFnKind::kRowNumber;
        call.output_type = DataType::kInt64;
      } else if (!fn.has_value()) {
        return Status::BindError(
            "OVER() requires an aggregation or ranking function, got " +
            node->function_name);
      } else {
        call.fn = *fn;
        if (node->children.size() != 1) {
          return Status::BindError(std::string(AggFnName(*fn)) +
                                   " expects exactly one argument");
        }
        if (node->children[0]->kind == AstExprKind::kStar) {
          if (call.fn != AggFn::kCount) {
            return Status::BindError("'*' argument is only valid for COUNT");
          }
          call.is_count_star = true;
          call.output_type = DataType::kInt64;
        } else {
          RFV_ASSIGN_OR_RETURN(call.arg,
                               BindAndCheck(*node->children[0], env));
          call.output_type = AggOutputType(call.fn, call.arg->type);
        }
      }
      for (const AstExprPtr& p : node->over->partition_by) {
        ExprPtr bound;
        RFV_ASSIGN_OR_RETURN(bound, BindAndCheck(*p, env));
        call.partition_by.push_back(std::move(bound));
      }
      for (const OrderItemAst& o : node->over->order_by) {
        SortKey key;
        RFV_ASSIGN_OR_RETURN(key.expr, BindAndCheck(*o.expr, env));
        key.ascending = o.ascending;
        call.order_by.push_back(std::move(key));
      }
      RFV_ASSIGN_OR_RETURN(call.frame, NormalizeFrame(*node->over));
      if (call.frame.range_mode) {
        // RANGE distances are measured along a single ascending numeric
        // ORDER BY key.
        if (call.order_by.size() != 1 || !call.order_by[0].ascending) {
          return Status::BindError(
              "RANGE frames require exactly one ascending ORDER BY key");
        }
        const DataType key_type = call.order_by[0].expr->type;
        if (key_type != DataType::kInt64 && key_type != DataType::kDouble &&
            key_type != DataType::kNull) {
          return Status::BindError(
              "RANGE frames require a numeric ORDER BY key");
        }
      }
      call.output_name = node->ToString();
      window_replacements[node] = base + calls.size();
      calls.push_back(std::move(call));
    }
    plan = MakeWindow(std::move(plan), std::move(calls));
    node_replacements.insert(window_replacements.begin(),
                             window_replacements.end());
  }

  // Final projection.
  {
    BindEnv env;
    env.schema = &plan->schema;
    env.text_replacements = &text_replacements;
    env.node_replacements = &node_replacements;

    std::vector<ExprPtr> projections;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.select_list) {
      if (item.is_star) {
        if (need_aggregate) {
          return Status::BindError("'*' cannot be combined with GROUP BY");
        }
        for (size_t i = 0; i < plan->schema.NumColumns(); ++i) {
          const ColumnDef& col = plan->schema.column(i);
          if (!item.star_qualifier.empty() &&
              !EqualsIgnoreCase(col.qualifier, item.star_qualifier)) {
            continue;
          }
          projections.push_back(eb::Col(i, col.type, col.QualifiedName()));
          names.push_back(col.name);
        }
        if (projections.empty()) {
          return Status::BindError("'*' expanded to no columns");
        }
        continue;
      }
      ExprPtr bound;
      RFV_ASSIGN_OR_RETURN(bound, BindAndCheck(*item.expr, env));
      projections.push_back(std::move(bound));
      names.push_back(!item.alias.empty() ? item.alias
                                          : DerivedName(*item.expr));
    }
    plan = MakeProject(std::move(plan), std::move(projections),
                       std::move(names));
  }

  // SELECT DISTINCT: grouping on every output column.
  if (stmt.distinct) {
    std::vector<ExprPtr> group_by;
    std::vector<std::string> names;
    for (size_t i = 0; i < plan->schema.NumColumns(); ++i) {
      group_by.push_back(eb::Col(i, plan->schema.column(i).type,
                                 plan->schema.column(i).name));
      names.push_back(plan->schema.column(i).name);
    }
    plan = MakeAggregate(std::move(plan), std::move(group_by),
                         std::move(names), {});
  }
  return plan;
}

Result<LogicalPlanPtr> Binder::BindSelect(const SelectStmt& stmt) {
  std::vector<LogicalPlanPtr> branches;
  for (const SelectStmt* s = &stmt; s != nullptr;
       s = s->union_all_next.get()) {
    LogicalPlanPtr branch;
    RFV_ASSIGN_OR_RETURN(branch, BindSelectCore(*s));
    branches.push_back(std::move(branch));
  }
  LogicalPlanPtr plan;
  if (branches.size() == 1) {
    plan = std::move(branches[0]);
  } else {
    const Schema& first = branches[0]->schema;
    for (size_t b = 1; b < branches.size(); ++b) {
      const Schema& other = branches[b]->schema;
      if (other.NumColumns() != first.NumColumns()) {
        return Status::BindError(
            "UNION ALL branches have different column counts");
      }
    }
    plan = MakeUnionAll(std::move(branches));
  }

  // ORDER BY binds against the output schema: aliases, plain column
  // names, or 1-based ordinals. A key that references input columns not
  // in the select list (standard SQL) is carried as a hidden projection
  // column and dropped after the sort.
  if (!stmt.order_by.empty()) {
    const size_t visible_columns = plan->schema.NumColumns();
    size_t hidden_columns = 0;
    std::vector<SortKey> keys;
    for (const OrderItemAst& item : stmt.order_by) {
      SortKey key;
      key.ascending = item.ascending;
      if (item.expr->kind == AstExprKind::kLiteral &&
          item.expr->literal.type() == DataType::kInt64) {
        const int64_t ordinal = item.expr->literal.AsInt();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(plan->schema.NumColumns())) {
          return Status::BindError("ORDER BY ordinal out of range");
        }
        const size_t i = static_cast<size_t>(ordinal - 1);
        key.expr = eb::Col(i, plan->schema.column(i).type,
                           plan->schema.column(i).name);
      } else {
        BindEnv env;
        env.schema = &plan->schema;
        Result<ExprPtr> bound = BindAndCheck(*item.expr, env);
        if (!bound.ok()) {
          // SQL also allows ordering by a select-list expression that is
          // no longer visible by name after projection (e.g. ORDER BY
          // s1.pos when the output column is named plain "pos"): match
          // the ORDER BY expression against the select list structurally.
          const std::string rendered = item.expr->ToString();
          bool has_star = false;
          for (const SelectItem& sel : stmt.select_list) {
            has_star = has_star || sel.is_star;
          }
          bool matched = false;
          for (size_t i = 0; !has_star && i < stmt.select_list.size(); ++i) {
            const SelectItem& sel = stmt.select_list[i];
            if (sel.expr == nullptr) continue;
            if (sel.expr->ToString() == rendered &&
                i < plan->schema.NumColumns()) {
              key.expr = eb::Col(i, plan->schema.column(i).type,
                                 plan->schema.column(i).name);
              matched = true;
              break;
            }
          }
          // Hidden sort column: bind against the projection's input and
          // extend the projection (single-branch queries only — a UNION
          // output has no single input scope).
          if (!matched && plan->kind == PlanKind::kProject) {
            BindEnv inner_env;
            inner_env.schema = &plan->children[0]->schema;
            Result<ExprPtr> inner = BindAndCheck(*item.expr, inner_env);
            if (inner.ok()) {
              const DataType type = (*inner)->type;
              plan->projections.push_back(std::move(inner).value());
              plan->schema.AddColumn(ColumnDef(
                  "$order" + std::to_string(hidden_columns), type));
              ++hidden_columns;
              key.expr = eb::Col(plan->schema.NumColumns() - 1, type);
              matched = true;
            }
          }
          if (!matched) return bound.status();
        } else {
          key.expr = std::move(bound).value();
        }
      }
      keys.push_back(std::move(key));
    }
    plan = MakeSort(std::move(plan), std::move(keys));
    if (hidden_columns > 0) {
      std::vector<ExprPtr> projections;
      std::vector<std::string> names;
      for (size_t i = 0; i < visible_columns; ++i) {
        projections.push_back(eb::Col(i, plan->schema.column(i).type,
                                      plan->schema.column(i).name));
        names.push_back(plan->schema.column(i).name);
      }
      plan = MakeProject(std::move(plan), std::move(projections),
                         std::move(names));
    }
  }

  if (stmt.limit >= 0) {
    plan = MakeLimit(std::move(plan), stmt.limit);
  }
  return plan;
}

}  // namespace rfv
