#ifndef RFVIEW_PLAN_LOGICAL_PLAN_H_
#define RFVIEW_PLAN_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace rfv {

/// Aggregation functions of the engine — exactly the set the paper
/// considers (§2.1): SUM, COUNT, AVG plus the semi-algebraic MIN/MAX.
enum class AggFn { kSum, kCount, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One aggregate call inside a GROUP BY: fn(arg) or COUNT(*).
struct AggregateCall {
  AggFn fn = AggFn::kSum;
  ExprPtr arg;               ///< null for COUNT(*)
  bool is_count_star = false;
  std::string output_name;
  DataType output_type = DataType::kDouble;
};

/// Sort key bound against the input schema.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Row-based window frame in normalized form. `lo`/`hi` are offsets
/// relative to the current row (lo = -l for "l PRECEDING", hi = +h for
/// "h FOLLOWING"); the unbounded flags override the offsets. This is the
/// bound form of the paper's window aggregation group.
struct WindowFrame {
  bool lo_unbounded = true;
  int64_t lo = 0;
  bool hi_unbounded = false;
  int64_t hi = 0;
  /// RANGE mode: offsets are *value* distances along the (single,
  /// ascending, numeric) ORDER BY key instead of row counts.
  bool range_mode = false;

  /// Frame covering the whole partition.
  static WindowFrame WholePartition() {
    return WindowFrame{true, 0, true, 0};
  }
  /// Cumulative frame: UNBOUNDED PRECEDING .. CURRENT ROW.
  static WindowFrame Cumulative() { return WindowFrame{true, 0, false, 0}; }
  /// Sliding frame (paper notation (l,h)): l PRECEDING .. h FOLLOWING.
  static WindowFrame Sliding(int64_t l, int64_t h) {
    return WindowFrame{false, -l, false, h};
  }

  bool operator==(const WindowFrame& other) const {
    return lo_unbounded == other.lo_unbounded && hi == other.hi &&
           hi_unbounded == other.hi_unbounded &&
           range_mode == other.range_mode &&
           (lo_unbounded || lo == other.lo) &&
           (hi_unbounded || hi == other.hi);
  }

  std::string ToString() const;
};

/// Kinds of reporting functions: framed aggregates (the paper's core)
/// plus the ranking functions its introduction motivates ("simple
/// ranking queries (TOP(n)-analyses)").
enum class WindowFnKind {
  kAggregate,  ///< fn(arg) over a ROWS frame
  kRowNumber,  ///< ROW_NUMBER(): 1-based position within the partition
  kRank,       ///< RANK(): like ROW_NUMBER but ties share the rank (gaps)
};

/// One reporting-function call: fn(arg) OVER (PARTITION BY partition_by
/// ORDER BY order_by frame). Bound against the window operator's input.
struct WindowCall {
  WindowFnKind kind = WindowFnKind::kAggregate;
  AggFn fn = AggFn::kSum;
  ExprPtr arg;               ///< null for COUNT(*) and ranking functions
  bool is_count_star = false;
  std::vector<ExprPtr> partition_by;
  std::vector<SortKey> order_by;
  WindowFrame frame;
  std::string output_name;
  DataType output_type = DataType::kDouble;
};

enum class PlanKind {
  kScan,      ///< base table scan
  kFilter,
  kProject,
  kJoin,
  kAggregate, ///< hash aggregation with optional grouping
  kWindow,    ///< reporting-function evaluation; appends one column per call
  kSort,
  kUnionAll,
  kLimit,
};

enum class JoinType { kInner, kLeftOuter, kCross };

/// A logical plan node. Like the bound expression tree this is a tagged
/// struct: only the fields of the node's kind are meaningful. The
/// `schema` member is the node's output schema and is always filled by
/// the binder or by the rewrite pattern builders.
struct LogicalPlan {
  PlanKind kind = PlanKind::kScan;
  Schema schema;
  std::vector<std::unique_ptr<LogicalPlan>> children;

  // kScan
  Table* table = nullptr;
  std::string alias;

  // kFilter (also carries HAVING)
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> projections;  ///< one per output column

  // kJoin
  JoinType join_type = JoinType::kInner;
  ExprPtr join_condition;  ///< null for pure cross join

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<AggregateCall> aggregates;

  // kWindow
  std::vector<WindowCall> window_calls;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;

  /// Estimated output rows, filled by EstimateCardinality
  /// (plan/cardinality.h) after optimization; -1 = not estimated.
  /// Surfaced by EXPLAIN and carried onto the physical operators for
  /// the estimated-vs-actual comparison in EXPLAIN ANALYZE.
  double est_rows = -1;

  /// Indented tree rendering for debugging / EXPLAIN-style output.
  /// Nodes with a cardinality estimate render an `est=N` suffix.
  std::string ToString(int indent = 0) const;
};

using LogicalPlanPtr = std::unique_ptr<LogicalPlan>;

// --- construction helpers (used by binder and rewrite/pattern_plan) --------

LogicalPlanPtr MakeScan(Table* table, const std::string& alias);
LogicalPlanPtr MakeFilter(LogicalPlanPtr input, ExprPtr predicate);
LogicalPlanPtr MakeProject(LogicalPlanPtr input,
                           std::vector<ExprPtr> projections,
                           std::vector<std::string> names);
LogicalPlanPtr MakeJoin(JoinType type, LogicalPlanPtr left,
                        LogicalPlanPtr right, ExprPtr condition);
LogicalPlanPtr MakeAggregate(LogicalPlanPtr input, std::vector<ExprPtr> group_by,
                             std::vector<std::string> group_names,
                             std::vector<AggregateCall> aggregates);
LogicalPlanPtr MakeWindow(LogicalPlanPtr input,
                          std::vector<WindowCall> calls);
LogicalPlanPtr MakeSort(LogicalPlanPtr input, std::vector<SortKey> keys);
LogicalPlanPtr MakeUnionAll(std::vector<LogicalPlanPtr> inputs);
LogicalPlanPtr MakeLimit(LogicalPlanPtr input, int64_t limit);

}  // namespace rfv

#endif  // RFVIEW_PLAN_LOGICAL_PLAN_H_
