#ifndef RFVIEW_PLAN_BINDER_H_
#define RFVIEW_PLAN_BINDER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "parser/ast.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace rfv {

/// Semantic analysis: resolves names against the catalog, lowers the
/// parser AST into bound expressions and a logical plan.
///
/// Plan shape produced for a SELECT core, bottom to top:
///   Scan/Join tree (FROM)
///   → Filter (WHERE)
///   → Aggregate (GROUP BY / aggregate functions)
///   → Filter (HAVING)
///   → Window (reporting functions)          — paper's evaluation order §1:
///   → Project (SELECT list)                   group-by first, then
///   → UnionAll (UNION ALL chain)              partitioning/ordering/frames
///   → Sort (ORDER BY) → Limit
class Binder {
 public:
  explicit Binder(Catalog* catalog) : catalog_(catalog) {}

  /// Binds a full SELECT (including UNION ALL chain, ORDER BY, LIMIT).
  Result<LogicalPlanPtr> BindSelect(const SelectStmt& stmt);

  /// Binds a scalar expression against `schema`; aggregates and window
  /// functions are rejected. Used for WHERE in UPDATE/DELETE and for
  /// INSERT values.
  Result<ExprPtr> BindScalar(const AstExpr& ast, const Schema& schema);

 private:
  struct BindEnv {
    const Schema* schema = nullptr;
    /// Replacement of subtrees by output columns of a lower plan node:
    /// by structural rendering (GROUP BY expressions) ...
    const std::map<std::string, size_t>* text_replacements = nullptr;
    /// ... and by node identity (aggregate / window calls collected from
    /// this very statement).
    const std::map<const AstExpr*, size_t>* node_replacements = nullptr;
  };

  Result<LogicalPlanPtr> BindSelectCore(const SelectStmt& stmt);
  Result<LogicalPlanPtr> BindTableRef(const TableRef& ref);
  Result<ExprPtr> BindExpr(const AstExpr& ast, const BindEnv& env);
  Result<ExprPtr> BindAndCheck(const AstExpr& ast, const BindEnv& env);

  /// Maps SUM/COUNT/AVG/MIN/MAX names; nullopt for non-aggregates.
  static std::optional<AggFn> AggFnByName(const std::string& upper_name);

  Catalog* catalog_;
};

}  // namespace rfv

#endif  // RFVIEW_PLAN_BINDER_H_
