#ifndef RFVIEW_PLAN_CARDINALITY_H_
#define RFVIEW_PLAN_CARDINALITY_H_

#include "plan/logical_plan.h"

namespace rfv {

/// Annotates every node of an optimized logical plan with an estimated
/// output cardinality (LogicalPlan::est_rows), bottom-up:
///
///  * scans read the exact row count from the table's statistics
///    (stats/table_stats.h — maintained incrementally on DML);
///  * filters apply textbook selectivities (equality → 1/NDV using the
///    last ANALYZE's distinct counts when the input is a base-table
///    scan, ranges → 1/4, AND → product, OR → inclusion-exclusion);
///  * equi joins assume key-foreign-key containment (max of the
///    inputs); other joins fall back to a fixed selectivity over the
///    cross product;
///  * grouping uses the group column's distinct count when available,
///    else the square-root rule.
///
/// Estimates are heuristic by design — their purpose is the
/// estimated-vs-actual comparison in EXPLAIN / EXPLAIN ANALYZE (see
/// docs/COST_MODEL.md), not plan selection, which happens earlier in
/// the rewrite layer's derivation cost model.
void EstimateCardinality(LogicalPlan* plan);

}  // namespace rfv

#endif  // RFVIEW_PLAN_CARDINALITY_H_
