#include "plan/logical_plan.h"

#include <sstream>

#include "common/logging.h"

namespace rfv {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "SUM";
    case AggFn::kCount: return "COUNT";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

std::string WindowFrame::ToString() const {
  std::ostringstream os;
  os << (range_mode ? "RANGE BETWEEN " : "ROWS BETWEEN ");
  if (lo_unbounded) {
    os << "UNBOUNDED PRECEDING";
  } else if (lo <= 0) {
    os << -lo << " PRECEDING";
  } else {
    os << lo << " FOLLOWING";
  }
  os << " AND ";
  if (hi_unbounded) {
    os << "UNBOUNDED FOLLOWING";
  } else if (hi >= 0) {
    os << hi << " FOLLOWING";
  } else {
    os << -hi << " PRECEDING";
  }
  return os.str();
}

std::string LogicalPlan::ToString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad;
  switch (kind) {
    case PlanKind::kScan:
      os << "Scan(" << (table != nullptr ? table->name() : "?");
      if (!alias.empty()) os << " AS " << alias;
      os << ")";
      break;
    case PlanKind::kFilter:
      os << "Filter(" << predicate->ToString() << ")";
      break;
    case PlanKind::kProject: {
      os << "Project(";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) os << ", ";
        os << projections[i]->ToString();
      }
      os << ")";
      break;
    }
    case PlanKind::kJoin:
      os << (join_type == JoinType::kInner
                 ? "InnerJoin"
                 : join_type == JoinType::kLeftOuter ? "LeftOuterJoin"
                                                     : "CrossJoin");
      if (join_condition != nullptr) {
        os << "(" << join_condition->ToString() << ")";
      }
      break;
    case PlanKind::kAggregate: {
      os << "Aggregate(groups=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) os << ", ";
        os << group_by[i]->ToString();
      }
      os << "], aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) os << ", ";
        os << AggFnName(aggregates[i].fn) << "("
           << (aggregates[i].is_count_star ? "*"
                                           : aggregates[i].arg->ToString())
           << ")";
      }
      os << "])";
      break;
    }
    case PlanKind::kWindow: {
      os << "Window(";
      for (size_t i = 0; i < window_calls.size(); ++i) {
        if (i > 0) os << ", ";
        const WindowCall& c = window_calls[i];
        if (c.kind == WindowFnKind::kRowNumber) {
          os << "ROW_NUMBER() OVER";
        } else if (c.kind == WindowFnKind::kRank) {
          os << "RANK() OVER";
        } else {
          os << AggFnName(c.fn) << "("
             << (c.is_count_star ? "*" : c.arg->ToString()) << ") OVER "
             << c.frame.ToString();
        }
      }
      os << ")";
      break;
    }
    case PlanKind::kSort: {
      os << "Sort(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) os << ", ";
        os << sort_keys[i].expr->ToString()
           << (sort_keys[i].ascending ? "" : " DESC");
      }
      os << ")";
      break;
    }
    case PlanKind::kUnionAll:
      os << "UnionAll";
      break;
    case PlanKind::kLimit:
      os << "Limit(" << limit << ")";
      break;
  }
  os << "  [" << schema.ToString() << "]";
  if (est_rows >= 0) {
    os << "  est=" << static_cast<int64_t>(est_rows + 0.5);
  }
  for (const auto& child : children) {
    os << "\n" << child->ToString(indent + 1);
  }
  return os.str();
}

LogicalPlanPtr MakeScan(Table* table, const std::string& alias) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kScan;
  plan->table = table;
  plan->alias = alias;
  plan->schema = alias.empty() ? table->schema().WithQualifier(table->name())
                               : table->schema().WithQualifier(alias);
  return plan;
}

LogicalPlanPtr MakeFilter(LogicalPlanPtr input, ExprPtr predicate) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kFilter;
  plan->schema = input->schema;
  plan->predicate = std::move(predicate);
  plan->children.push_back(std::move(input));
  return plan;
}

LogicalPlanPtr MakeProject(LogicalPlanPtr input,
                           std::vector<ExprPtr> projections,
                           std::vector<std::string> names) {
  RFV_CHECK(projections.size() == names.size());
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kProject;
  for (size_t i = 0; i < projections.size(); ++i) {
    plan->schema.AddColumn(ColumnDef(names[i], projections[i]->type));
  }
  plan->projections = std::move(projections);
  plan->children.push_back(std::move(input));
  return plan;
}

LogicalPlanPtr MakeJoin(JoinType type, LogicalPlanPtr left,
                        LogicalPlanPtr right, ExprPtr condition) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kJoin;
  plan->join_type = type;
  plan->schema = Schema::Concat(left->schema, right->schema);
  plan->join_condition = std::move(condition);
  plan->children.push_back(std::move(left));
  plan->children.push_back(std::move(right));
  return plan;
}

LogicalPlanPtr MakeAggregate(LogicalPlanPtr input,
                             std::vector<ExprPtr> group_by,
                             std::vector<std::string> group_names,
                             std::vector<AggregateCall> aggregates) {
  RFV_CHECK(group_by.size() == group_names.size());
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kAggregate;
  for (size_t i = 0; i < group_by.size(); ++i) {
    plan->schema.AddColumn(ColumnDef(group_names[i], group_by[i]->type));
  }
  for (const AggregateCall& call : aggregates) {
    plan->schema.AddColumn(ColumnDef(call.output_name, call.output_type));
  }
  plan->group_by = std::move(group_by);
  plan->aggregates = std::move(aggregates);
  plan->children.push_back(std::move(input));
  return plan;
}

LogicalPlanPtr MakeWindow(LogicalPlanPtr input, std::vector<WindowCall> calls) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kWindow;
  plan->schema = input->schema;
  for (const WindowCall& call : calls) {
    plan->schema.AddColumn(ColumnDef(call.output_name, call.output_type));
  }
  plan->window_calls = std::move(calls);
  plan->children.push_back(std::move(input));
  return plan;
}

LogicalPlanPtr MakeSort(LogicalPlanPtr input, std::vector<SortKey> keys) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kSort;
  plan->schema = input->schema;
  plan->sort_keys = std::move(keys);
  plan->children.push_back(std::move(input));
  return plan;
}

LogicalPlanPtr MakeUnionAll(std::vector<LogicalPlanPtr> inputs) {
  RFV_CHECK(!inputs.empty());
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kUnionAll;
  plan->schema = inputs[0]->schema;
  for (auto& input : inputs) plan->children.push_back(std::move(input));
  return plan;
}

LogicalPlanPtr MakeLimit(LogicalPlanPtr input, int64_t limit) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kLimit;
  plan->schema = input->schema;
  plan->limit = limit;
  plan->children.push_back(std::move(input));
  return plan;
}

}  // namespace rfv
