#include "plan/cardinality.h"

#include <algorithm>
#include <cmath>

namespace rfv {

namespace {

constexpr double kDefaultSelectivity = 0.33;
constexpr double kRangeSelectivity = 0.25;

/// Distinct count of the column `index` refers to when `input` is a
/// base-table scan with analyzed statistics; -1 otherwise.
int64_t DistinctOf(const LogicalPlan& input, size_t index) {
  if (input.kind != PlanKind::kScan || input.table == nullptr) return -1;
  // Copy under the table lock: estimation runs on the concurrent read
  // path while DML updates stats in place.
  const TableStats stats = input.table->StatsSnapshot();
  if (index >= stats.columns.size()) return -1;
  return stats.columns[index].distinct_count;
}

double PredicateSelectivity(const Expr& e, const LogicalPlan& input) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kAnd:
          return PredicateSelectivity(*e.children[0], input) *
                 PredicateSelectivity(*e.children[1], input);
        case BinaryOp::kOr: {
          const double a = PredicateSelectivity(*e.children[0], input);
          const double b = PredicateSelectivity(*e.children[1], input);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq: {
          for (int side = 0; side < 2; ++side) {
            const Expr& col = *e.children[side];
            const Expr& other = *e.children[1 - side];
            if (col.kind == ExprKind::kColumnRef &&
                other.kind != ExprKind::kColumnRef) {
              const int64_t distinct = DistinctOf(input, col.column_index);
              if (distinct > 0) return 1.0 / static_cast<double>(distinct);
              return 0.1;
            }
          }
          return 0.1;
        }
        case BinaryOp::kNe:
          return 0.9;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return kDefaultSelectivity;
        default:
          return kDefaultSelectivity;
      }
    case ExprKind::kBetween:
      return kRangeSelectivity;
    case ExprKind::kIn: {
      // needle IN (c1..ck): k equality probes.
      double eq = 0.1;
      if (e.children[0]->kind == ExprKind::kColumnRef) {
        const int64_t distinct =
            DistinctOf(input, e.children[0]->column_index);
        if (distinct > 0) eq = 1.0 / static_cast<double>(distinct);
      }
      return std::min(1.0, eq * static_cast<double>(e.children.size() - 1));
    }
    case ExprKind::kIsNull:
      return e.is_null_negated ? 0.9 : 0.1;
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) {
        return 1.0 - PredicateSelectivity(*e.children[0], input);
      }
      return kDefaultSelectivity;
    default:
      return kDefaultSelectivity;
  }
}

double Estimate(LogicalPlan* plan) {
  double child_rows = 0;
  for (auto& child : plan->children) child_rows = Estimate(child.get());
  // child_rows now holds the LAST child's estimate; joins and unions
  // read their children's est_rows directly below.
  double est = 0;
  switch (plan->kind) {
    case PlanKind::kScan:
      est = plan->table != nullptr
                ? static_cast<double>(plan->table->StatsSnapshot().row_count)
                : 0;
      break;
    case PlanKind::kFilter:
      est = child_rows *
            PredicateSelectivity(*plan->predicate, *plan->children[0]);
      break;
    case PlanKind::kProject:
    case PlanKind::kWindow:
    case PlanKind::kSort:
      est = child_rows;
      break;
    case PlanKind::kJoin: {
      const double left = plan->children[0]->est_rows;
      const double right = plan->children[1]->est_rows;
      const Expr* cond = plan->join_condition.get();
      const bool equi = cond != nullptr && cond->kind == ExprKind::kBinary &&
                        cond->binary_op == BinaryOp::kEq &&
                        cond->children[0]->kind == ExprKind::kColumnRef &&
                        cond->children[1]->kind == ExprKind::kColumnRef;
      if (cond == nullptr) {
        est = left * right;
      } else if (equi) {
        // Key–foreign-key containment assumption.
        est = std::max(left, right);
      } else {
        est = left * right * kDefaultSelectivity;
      }
      if (plan->join_type == JoinType::kLeftOuter) est = std::max(est, left);
      break;
    }
    case PlanKind::kAggregate: {
      if (plan->group_by.empty()) {
        est = 1;
        break;
      }
      // Single-column grouping over a scan: the distinct count. Else
      // the square-root rule.
      int64_t distinct = -1;
      if (plan->group_by.size() == 1 &&
          plan->group_by[0]->kind == ExprKind::kColumnRef) {
        distinct =
            DistinctOf(*plan->children[0], plan->group_by[0]->column_index);
      }
      est = distinct > 0 ? static_cast<double>(distinct)
                         : std::sqrt(std::max(child_rows, 0.0));
      est = std::min(est, child_rows);
      break;
    }
    case PlanKind::kUnionAll: {
      est = 0;
      for (const auto& child : plan->children) est += child->est_rows;
      break;
    }
    case PlanKind::kLimit:
      est = plan->limit >= 0
                ? std::min(child_rows, static_cast<double>(plan->limit))
                : child_rows;
      break;
  }
  plan->est_rows = std::max(0.0, est);
  return plan->est_rows;
}

}  // namespace

void EstimateCardinality(LogicalPlan* plan) {
  if (plan == nullptr) return;
  Estimate(plan);
}

}  // namespace rfv
