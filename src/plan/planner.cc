#include "plan/planner.h"

#include <utility>

#include "common/logging.h"
#include "expr/builder.h"
#include "expr/eval.h"

namespace rfv {

void SplitConjuncts(ExprPtr predicate, std::vector<ExprPtr>* out) {
  if (predicate == nullptr) return;
  if (predicate->kind == ExprKind::kBinary &&
      predicate->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(std::move(predicate->children[0]), out);
    SplitConjuncts(std::move(predicate->children[1]), out);
    return;
  }
  out->push_back(std::move(predicate));
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr combined;
  for (ExprPtr& c : conjuncts) {
    combined = combined == nullptr
                   ? std::move(c)
                   : eb::And(std::move(combined), std::move(c));
  }
  return combined;
}

bool RefsOnlyRange(const Expr& expr, size_t lo, size_t hi) {
  if (expr.kind == ExprKind::kColumnRef) {
    return expr.column_index >= lo && expr.column_index < hi;
  }
  for (const auto& child : expr.children) {
    if (!RefsOnlyRange(*child, lo, hi)) return false;
  }
  return true;
}

void ShiftColumnRefs(Expr* expr, int64_t delta) {
  if (expr->kind == ExprKind::kColumnRef) {
    expr->column_index =
        static_cast<size_t>(static_cast<int64_t>(expr->column_index) + delta);
  }
  for (auto& child : expr->children) {
    ShiftColumnRefs(child.get(), delta);
  }
}

void FoldConstants(Expr* expr) {
  for (auto& child : expr->children) {
    FoldConstants(child.get());
  }
  switch (expr->kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return;
    default:
      break;
  }
  for (const auto& child : expr->children) {
    if (child->kind != ExprKind::kLiteral) return;
  }
  // All operands are literals and every implemented node kind is pure:
  // evaluate once now. Runtime failures (division/MOD by zero) keep the
  // original expression so execution reports them.
  const Result<Value> folded = Evaluator::Eval(*expr, Row());
  if (!folded.ok()) return;
  const DataType type = expr->type;
  expr->kind = ExprKind::kLiteral;
  expr->literal = *folded;
  expr->children.clear();
  // Preserve the checked type unless the fold produced NULL (whose
  // literal type is kNull but remains assignable everywhere).
  expr->type = folded->is_null() ? type : folded->type();
}

namespace {

/// Applies constant folding to every expression a plan node owns.
void FoldPlanConstants(LogicalPlan* plan) {
  if (plan->predicate != nullptr) FoldConstants(plan->predicate.get());
  if (plan->join_condition != nullptr) {
    FoldConstants(plan->join_condition.get());
  }
  for (auto& e : plan->projections) FoldConstants(e.get());
  for (auto& e : plan->group_by) FoldConstants(e.get());
  for (auto& call : plan->aggregates) {
    if (call.arg != nullptr) FoldConstants(call.arg.get());
  }
  for (auto& call : plan->window_calls) {
    if (call.arg != nullptr) FoldConstants(call.arg.get());
    for (auto& p : call.partition_by) FoldConstants(p.get());
    for (auto& k : call.order_by) FoldConstants(k.expr.get());
  }
  for (auto& k : plan->sort_keys) FoldConstants(k.expr.get());
  for (auto& child : plan->children) FoldPlanConstants(child.get());
}

/// Pushes `conjuncts` (bound against `plan`'s output schema) as far down
/// into `plan` as is safe; whatever cannot be pushed is re-attached as a
/// Filter above.
LogicalPlanPtr PushFilters(LogicalPlanPtr plan, std::vector<ExprPtr> conjuncts);

LogicalPlanPtr OptimizeNode(LogicalPlanPtr plan) {
  if (plan->kind == PlanKind::kFilter) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(std::move(plan->predicate), &conjuncts);
    LogicalPlanPtr child = std::move(plan->children[0]);
    return PushFilters(std::move(child), std::move(conjuncts));
  }
  for (auto& child : plan->children) {
    child = OptimizeNode(std::move(child));
  }
  return plan;
}

LogicalPlanPtr PushFilters(LogicalPlanPtr plan,
                           std::vector<ExprPtr> conjuncts) {
  switch (plan->kind) {
    case PlanKind::kFilter: {
      // Merge stacked filters, then continue below.
      SplitConjuncts(std::move(plan->predicate), &conjuncts);
      LogicalPlanPtr child = std::move(plan->children[0]);
      return PushFilters(std::move(child), std::move(conjuncts));
    }
    case PlanKind::kJoin: {
      const size_t left_width = plan->children[0]->schema.NumColumns();
      const size_t total_width = plan->schema.NumColumns();
      std::vector<ExprPtr> left_conjuncts;
      std::vector<ExprPtr> right_conjuncts;
      std::vector<ExprPtr> join_conjuncts;
      std::vector<ExprPtr> above_conjuncts;
      const bool left_outer = plan->join_type == JoinType::kLeftOuter;
      for (ExprPtr& c : conjuncts) {
        if (RefsOnlyRange(*c, 0, left_width)) {
          left_conjuncts.push_back(std::move(c));
        } else if (!left_outer &&
                   RefsOnlyRange(*c, left_width, total_width)) {
          ShiftColumnRefs(c.get(), -static_cast<int64_t>(left_width));
          right_conjuncts.push_back(std::move(c));
        } else if (!left_outer) {
          join_conjuncts.push_back(std::move(c));
        } else {
          above_conjuncts.push_back(std::move(c));
        }
      }
      // Fold pushed join conjuncts into the join condition; a cross join
      // that gains a condition becomes an inner join.
      if (!join_conjuncts.empty()) {
        if (plan->join_condition != nullptr) {
          join_conjuncts.push_back(std::move(plan->join_condition));
        }
        plan->join_condition = CombineConjuncts(std::move(join_conjuncts));
        if (plan->join_type == JoinType::kCross) {
          plan->join_type = JoinType::kInner;
        }
      }
      plan->children[0] =
          PushFilters(std::move(plan->children[0]), std::move(left_conjuncts));
      plan->children[1] = PushFilters(std::move(plan->children[1]),
                                      std::move(right_conjuncts));
      if (!above_conjuncts.empty()) {
        return MakeFilter(std::move(plan),
                          CombineConjuncts(std::move(above_conjuncts)));
      }
      return plan;
    }
    default: {
      // Optimize below, then re-attach the filter here.
      for (auto& child : plan->children) {
        child = OptimizeNode(std::move(child));
      }
      if (!conjuncts.empty()) {
        return MakeFilter(std::move(plan),
                          CombineConjuncts(std::move(conjuncts)));
      }
      return plan;
    }
  }
}

}  // namespace

LogicalPlanPtr OptimizePlan(LogicalPlanPtr plan) {
  RFV_CHECK(plan != nullptr);
  plan = OptimizeNode(std::move(plan));
  FoldPlanConstants(plan.get());
  return plan;
}

}  // namespace rfv
