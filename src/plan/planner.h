#ifndef RFVIEW_PLAN_PLANNER_H_
#define RFVIEW_PLAN_PLANNER_H_

#include <vector>

#include "plan/logical_plan.h"

namespace rfv {

// --- expression analysis utilities (shared with exec/join.cc) --------------

/// Splits a predicate into its top-level AND conjuncts (ownership moves
/// into `out`).
void SplitConjuncts(ExprPtr predicate, std::vector<ExprPtr>* out);

/// AND-combines conjuncts; returns null for an empty list.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// True when every column reference in `expr` lies in [lo, hi).
bool RefsOnlyRange(const Expr& expr, size_t lo, size_t hi);

/// Shifts every column reference by `delta` (used when pushing a
/// predicate over a join's right side down into the right child).
void ShiftColumnRefs(Expr* expr, int64_t delta);

/// Constant folding: replaces pure subexpressions whose operands are all
/// literals with their value (e.g. `s1.pos - 1 - 4` → `s1.pos - 5` after
/// reassociation is NOT attempted, but `MOD(7, 3)`, `1 + 2`, `NOT TRUE`
/// fold). Subexpressions whose evaluation would fail at runtime
/// (division by zero) are left in place so the error surfaces during
/// execution, preserving semantics.
void FoldConstants(Expr* expr);

// --- optimizer --------------------------------------------------------------

/// Rule-based optimization pass:
///  * merges stacked filters,
///  * pushes filter conjuncts below joins (left-only conjuncts into the
///    left child, right-only into the right child — inner/cross joins
///    only; for LEFT OUTER only the left side is safe),
///  * folds remaining mixed conjuncts into inner/cross join conditions,
///    turning a `FROM a, b WHERE a.x = b.y` cross join into an inner
///    join the executor can run as an index nested-loop or hash join.
///
/// The pass is what gives the paper's relational operator patterns their
/// "with index" execution paths: the self-join predicates of Figures 2,
/// 4, 10 and 13 arrive as WHERE conjuncts above a comma join and must be
/// attached to the join to become probe conditions.
LogicalPlanPtr OptimizePlan(LogicalPlanPtr plan);

}  // namespace rfv

#endif  // RFVIEW_PLAN_PLANNER_H_
