#include "view/view_def.h"

#include <sstream>

#include "common/str_util.h"

namespace rfv {

std::string SequenceViewDef::ToString() const {
  std::ostringstream os;
  os << view_name << ": " << SeqAggFnName(fn) << "(" << value_column << ")"
     << " OVER (";
  if (!partition_columns.empty()) {
    os << "PARTITION BY " << Join(partition_columns, ", ") << " ";
  }
  os << "ORDER BY " << order_column << " " << window.ToString() << ") FROM "
     << base_table << ", n=" << n << (indexed ? ", indexed" : "");
  return os.str();
}

}  // namespace rfv
