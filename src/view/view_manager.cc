#include "view/view_manager.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"
#include "sequence/compute.h"

namespace rfv {

namespace {

/// Extracts (partition key, position, value) triples from the base
/// table, grouped by partition key in ascending order, each partition's
/// values indexed by position. Validates dense 1..n positions.
struct PartitionData {
  std::vector<Value> key;
  std::vector<SeqValue> values;  ///< values[i] = value at position i+1
};

Result<std::vector<PartitionData>> ExtractPartitions(
    const Table& base, size_t order_col, size_t value_col,
    const std::vector<size_t>& partition_cols) {
  std::map<std::vector<Value>, std::map<int64_t, SeqValue>> grouped;
  for (size_t r = 0; r < base.NumRows(); ++r) {
    const Row& row = base.row(r);
    const Value& pos = row[order_col];
    const Value& val = row[value_col];
    if (pos.is_null() || pos.type() != DataType::kInt64) {
      return Status::InvalidArgument(
          "sequence view order column must hold non-NULL integers");
    }
    std::vector<Value> key;
    key.reserve(partition_cols.size());
    for (size_t c : partition_cols) key.push_back(row[c]);
    auto& part = grouped[key];
    if (!part.emplace(pos.AsInt(), val.is_null() ? 0 : val.ToDouble())
             .second) {
      return Status::InvalidArgument(
          "duplicate position " + std::to_string(pos.AsInt()) +
          " in sequence view base data");
    }
  }
  std::vector<PartitionData> out;
  out.reserve(grouped.size());
  for (auto& [key, positions] : grouped) {
    PartitionData part;
    part.key = key;
    part.values.reserve(positions.size());
    int64_t expected = 1;
    for (const auto& [pos, val] : positions) {
      if (pos != expected) {
        return Status::InvalidArgument(
            "sequence view positions must be dense 1..n; missing position " +
            std::to_string(expected));
      }
      part.values.push_back(val);
      ++expected;
    }
    out.push_back(std::move(part));
  }
  return out;
}

}  // namespace

Status ViewManager::Materialize(const SequenceViewDef& def, Table* content,
                                int64_t* n_out) {
  Table* base = nullptr;
  {
    Result<Table*> r = catalog_->GetTable(def.base_table);
    if (!r.ok()) return r.status();
    base = *r;
  }
  size_t order_col = 0;
  size_t value_col = 0;
  {
    Result<size_t> r = base->schema().FindColumn("", def.order_column);
    if (!r.ok()) return r.status();
    order_col = *r;
    r = base->schema().FindColumn("", def.value_column);
    if (!r.ok()) return r.status();
    value_col = *r;
  }
  std::vector<size_t> partition_cols;
  for (const std::string& name : def.partition_columns) {
    Result<size_t> r = base->schema().FindColumn("", name);
    if (!r.ok()) return r.status();
    partition_cols.push_back(*r);
  }

  std::vector<PartitionData> partitions;
  RFV_ASSIGN_OR_RETURN(
      partitions, ExtractPartitions(*base, order_col, value_col,
                                    partition_cols));

  // Bracket the truncate-and-refill as one committed statement:
  // concurrent readers keep scanning the previous content snapshot and
  // never observe the empty or half-filled intermediate states.
  Table::WriteGuard guard(content);
  content->Truncate();
  int64_t max_n = 0;
  std::vector<Row> rows;
  for (const PartitionData& part : partitions) {
    const Sequence seq = BuildCompleteSequence(part.values, def.window, def.fn);
    max_n = std::max(max_n, seq.n());
    for (int64_t k = seq.first_pos(); k <= seq.last_pos(); ++k) {
      Row row;
      for (const Value& kv : part.key) row.Append(kv);
      row.Append(Value::Int(k));
      row.Append(Value::Double(seq.at(k)));
      rows.push_back(std::move(row));
    }
  }
  RFV_RETURN_IF_ERROR(content->InsertBatch(std::move(rows)));
  // A freshly materialized content table is the cost model's main input;
  // make its statistics exact (distinct partition keys, tight pos/val
  // ranges) instead of waiting for an explicit ANALYZE.
  content->Analyze();
  *n_out = max_n;
  return Status::OK();
}

Result<const SequenceViewDef*> ViewManager::CreateSequenceView(
    SequenceViewDef def) {
  def.view_name = ToLower(def.view_name);
  if (FindView(def.view_name) != nullptr || catalog_->HasTable(def.view_name)) {
    return Status::AlreadyExists("view " + def.view_name + " already exists");
  }
  // Build the content schema: partition columns keep their base types.
  Table* base = nullptr;
  {
    Result<Table*> r = catalog_->GetTable(def.base_table);
    if (!r.ok()) return r.status();
    base = *r;
  }
  Schema schema;
  for (const std::string& name : def.partition_columns) {
    Result<size_t> c = base->schema().FindColumn("", name);
    if (!c.ok()) return c.status();
    schema.AddColumn(ColumnDef(name, base->schema().column(*c).type));
  }
  schema.AddColumn(ColumnDef("pos", DataType::kInt64));
  schema.AddColumn(ColumnDef("val", DataType::kDouble));

  Table* content = nullptr;
  {
    Result<Table*> r = catalog_->CreateTable(def.view_name, std::move(schema));
    if (!r.ok()) return r.status();
    content = *r;
  }
  int64_t n = 0;
  Status status = Materialize(def, content, &n);
  def.n = n;
  if (!status.ok()) {
    (void)catalog_->DropTable(def.view_name);
    return status;
  }
  if (def.indexed) {
    RFV_RETURN_IF_ERROR(content->CreateIndex(def.view_name + "_pk", "pos"));
  }
  NoteFullRefresh(def.view_name, static_cast<int64_t>(content->NumRows()));
  views_.push_back(std::make_unique<SequenceViewDef>(std::move(def)));
  return views_.back().get();
}

Result<const SequenceViewDef*> ViewManager::AdoptView(SequenceViewDef def) {
  def.view_name = ToLower(def.view_name);
  if (FindView(def.view_name) != nullptr) {
    return Status::AlreadyExists("view " + def.view_name +
                                 " already exists");
  }
  if (!catalog_->HasTable(def.view_name)) {
    return Status::NotFound("content table " + def.view_name +
                            " does not exist");
  }
  views_.push_back(std::make_unique<SequenceViewDef>(std::move(def)));
  return views_.back().get();
}

Status ViewManager::RefreshView(const std::string& view_name) {
  SequenceViewDef* def = nullptr;
  for (auto& v : views_) {
    if (v->view_name == ToLower(view_name)) {
      def = v.get();
      break;
    }
  }
  if (def == nullptr) {
    return Status::NotFound("view " + view_name + " is not registered");
  }
  if (def->derived) {
    return Status::NotSupported(
        "derived views (paper §6 reductions) cannot be refreshed from the "
        "base table; re-derive from the source view instead");
  }
  Result<Table*> content = catalog_->GetTable(def->view_name);
  if (!content.ok()) return content.status();
  // Fill a local, then publish through the atomic cell: concurrent
  // SELECTs read def->n lock-free while this refresh runs.
  int64_t n = 0;
  RFV_RETURN_IF_ERROR(Materialize(*def, *content, &n));
  def->n = n;
  NoteFullRefresh(def->view_name, static_cast<int64_t>((*content)->NumRows()));
  return Status::OK();
}

Status ViewManager::DropView(const std::string& view_name) {
  const std::string key = ToLower(view_name);
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->view_name == key) {
      views_.erase(it);
      {
        std::lock_guard<std::mutex> lock(maintenance_mu_);
        maintenance_.erase(key);
      }
      return catalog_->DropTable(key);
    }
  }
  return Status::NotFound("view " + view_name + " is not registered");
}

ViewMaintenanceCounters ViewManager::MaintenanceCounters(
    const std::string& view_name) const {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  const auto it = maintenance_.find(ToLower(view_name));
  return it == maintenance_.end() ? ViewMaintenanceCounters{} : it->second;
}

void ViewManager::NoteFullRefresh(const std::string& view_name,
                                  int64_t rows_written) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  ViewMaintenanceCounters& c = maintenance_[ToLower(view_name)];
  ++c.full_refreshes;
  c.rows_written += rows_written;
}

void ViewManager::NoteIncrementalUpdate(const std::string& view_name,
                                        int64_t rows_written) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  ViewMaintenanceCounters& c = maintenance_[ToLower(view_name)];
  ++c.incremental_updates;
  c.rows_written += rows_written;
}

const SequenceViewDef* ViewManager::FindView(
    const std::string& view_name) const {
  const std::string key = ToLower(view_name);
  for (const auto& v : views_) {
    if (v->view_name == key) return v.get();
  }
  return nullptr;
}

std::vector<const SequenceViewDef*> ViewManager::FindCandidates(
    const std::string& base_table, const std::string& value_column,
    const std::string& order_column, SeqAggFn fn,
    const std::vector<std::string>& partition_columns) const {
  const auto same_partitioning = [&](const SequenceViewDef& v) {
    if (v.partition_columns.size() != partition_columns.size()) return false;
    for (size_t i = 0; i < partition_columns.size(); ++i) {
      if (!EqualsIgnoreCase(v.partition_columns[i], partition_columns[i])) {
        return false;
      }
    }
    return true;
  };
  std::vector<const SequenceViewDef*> out;
  for (const auto& v : views_) {
    if (EqualsIgnoreCase(v->base_table, base_table) &&
        EqualsIgnoreCase(v->value_column, value_column) &&
        EqualsIgnoreCase(v->order_column, order_column) && v->fn == fn &&
        same_partitioning(*v) && !v->derived) {
      out.push_back(v.get());
    }
  }
  return out;
}

}  // namespace rfv
