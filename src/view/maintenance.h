#ifndef RFVIEW_VIEW_MAINTENANCE_H_
#define RFVIEW_VIEW_MAINTENANCE_H_

#include <string>

#include "common/status.h"
#include "view/view_manager.h"

namespace rfv {

/// Incremental maintenance of materialized sequence views (paper §2.3)
/// at the storage level: DML against the base table is propagated to
/// every dependent (non-partitioned) view's content table.
///
/// UPDATE uses the paper's locality rule — for a sliding SUM view only
/// the w = l+h+1 rows whose window contains the changed position are
/// touched (located via the view's pos index); for a cumulative SUM view
/// the rows at positions >= k. MIN/MAX views recompute the affected
/// window rows from base data. INSERT and DELETE shift every higher
/// position of the base table (positional sequences), so the content
/// table is refreshed wholesale — the in-memory maintenance API
/// (sequence/maintain.h) demonstrates the paper's local insert/delete
/// rules without the storage shift cost.

/// Sets the value at `position` of `base_table` and maintains all
/// dependent views. Returns the number of view rows written.
/// Errors: kNotFound (table/position), kInvalidArgument.
Result<size_t> PropagateBaseUpdate(ViewManager* views,
                                   const std::string& base_table,
                                   int64_t position, double new_value);

/// Inserts a new value at `position` (old positions >= `position` shift
/// up by one) and refreshes dependent views. Base tables must consist of
/// exactly the order and value columns used by the dependent views
/// (other columns would need values for the inserted row).
Result<size_t> PropagateBaseInsert(ViewManager* views,
                                   const std::string& base_table,
                                   int64_t position, double value);

/// Deletes the row at `position` (higher positions shift down) and
/// refreshes dependent views.
Result<size_t> PropagateBaseDelete(ViewManager* views,
                                   const std::string& base_table,
                                   int64_t position);

}  // namespace rfv

#endif  // RFVIEW_VIEW_MAINTENANCE_H_
