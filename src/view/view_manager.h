#ifndef RFVIEW_VIEW_VIEW_MANAGER_H_
#define RFVIEW_VIEW_VIEW_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "view/view_def.h"

namespace rfv {

/// Maintenance activity of one registered view, surfaced through the
/// `rfv_system.views` introspection view.
struct ViewMaintenanceCounters {
  /// Complete rematerializations from base data (initial materialize,
  /// REFRESH, and the insert/delete propagation paths).
  int64_t full_refreshes = 0;
  /// Localized update propagations (paper §2.3 locality rule).
  int64_t incremental_updates = 0;
  /// Content rows written across all maintenance of this view.
  int64_t rows_written = 0;
};

/// Registry and materializer for sequence views. Content tables live in
/// the catalog (so SQL can query them directly); this class owns the
/// sequence metadata and the materialization / refresh logic.
class ViewManager {
 public:
  explicit ViewManager(Catalog* catalog) : catalog_(catalog) {}

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  /// Materializes a complete sequence view per `def` (def.n is filled
  /// in). Requirements on the base table: `order_column` holds dense
  /// positions 1..n (per partition for partitioned views) — the paper's
  /// sequences are positional; gaps are a kInvalidArgument error.
  /// Errors: kNotFound (base table/columns), kAlreadyExists (view name).
  Result<const SequenceViewDef*> CreateSequenceView(SequenceViewDef def);

  /// Registers metadata for a view whose content table already exists
  /// in the catalog — used by the §6 reductions (view/reduction.h) that
  /// derive content from other views rather than from base data.
  /// Errors: kNotFound (content table missing), kAlreadyExists.
  Result<const SequenceViewDef*> AdoptView(SequenceViewDef def);

  /// Recomputes the view content from the base table (full refresh).
  /// Errors: kNotSupported for derived views (their content is not a
  /// function of the base table's current positional layout).
  Status RefreshView(const std::string& view_name);

  /// Drops the view and its content table.
  Status DropView(const std::string& view_name);

  const SequenceViewDef* FindView(const std::string& view_name) const;

  /// Views defined over (base_table, value_column, order_column) with
  /// the given aggregate and an identical partitioning scheme — the
  /// rewriter's candidate set. Views derived by the §6 reductions are
  /// excluded (their position space is synthetic).
  std::vector<const SequenceViewDef*> FindCandidates(
      const std::string& base_table, const std::string& value_column,
      const std::string& order_column, SeqAggFn fn,
      const std::vector<std::string>& partition_columns = {}) const;

  const std::vector<std::unique_ptr<SequenceViewDef>>& views() const {
    return views_;
  }

  /// Maintenance counters of `view_name` (all-zero when the view has
  /// seen no maintenance or is unknown).
  ViewMaintenanceCounters MaintenanceCounters(
      const std::string& view_name) const;

  /// Counter hooks, called by the refresh paths above and by the DML
  /// propagation in view/maintenance.cc.
  void NoteFullRefresh(const std::string& view_name, int64_t rows_written);
  void NoteIncrementalUpdate(const std::string& view_name,
                             int64_t rows_written);

  Catalog* catalog() const { return catalog_; }

 private:
  /// Computes and writes the content rows for `def`.
  Status Materialize(const SequenceViewDef& def, Table* content,
                     int64_t* n_out);

  Catalog* catalog_;
  std::vector<std::unique_ptr<SequenceViewDef>> views_;
  /// Lowered view name → maintenance counters. Guarded by
  /// maintenance_mu_: the counters are bumped by maintenance running
  /// under the engine write lock but read by concurrent SELECTs over
  /// rfv_system.views.
  mutable std::mutex maintenance_mu_;
  std::map<std::string, ViewMaintenanceCounters> maintenance_;
};

}  // namespace rfv

#endif  // RFVIEW_VIEW_VIEW_MANAGER_H_
