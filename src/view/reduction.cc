#include "view/reduction.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"
#include "sequence/compute.h"
#include "sequence/derive_cumulative.h"
#include "sequence/minoa.h"
#include "sequence/reporting.h"

namespace rfv {

namespace {

/// Loads the content of a partitioned view into a PartitionedSequence
/// keyed by the integer partition columns.
Result<PartitionedSequence> LoadPartitionedSequence(
    const ViewManager& views, const SequenceViewDef& def) {
  Result<Table*> content = views.catalog()->GetTable(def.view_name);
  if (!content.ok()) return content.status();
  const Table& table = **content;
  const size_t key_width = def.partition_columns.size();
  const size_t pos_col = key_width;
  const size_t val_col = key_width + 1;

  // Group stored sequence values by partition key.
  std::map<std::vector<int64_t>, std::map<int64_t, SeqValue>> grouped;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const Row& row = table.row(r);
    std::vector<int64_t> key;
    key.reserve(key_width);
    for (size_t c = 0; c < key_width; ++c) {
      if (row[c].is_null() || row[c].type() != DataType::kInt64) {
        return Status::NotDerivable(
            "partitioning reduction requires integer partition keys");
      }
      key.push_back(row[c].AsInt());
    }
    grouped[std::move(key)][row[pos_col].AsInt()] =
        row[val_col].is_null() ? 0 : row[val_col].ToDouble();
  }

  PartitionedSequence sequence(def.window, def.fn);
  for (const auto& [key, positions] : grouped) {
    // Rebuild the stored Sequence, then reconstruct its raw data — the
    // derivation the §6.2 lemma licenses for complete reporting
    // functions.
    const int64_t first = positions.begin()->first;
    const int64_t last = positions.rbegin()->first;
    std::vector<SeqValue> values(static_cast<size_t>(last - first + 1), 0);
    for (const auto& [pos, val] : positions) {
      values[static_cast<size_t>(pos - first)] = val;
    }
    int64_t n = 0;
    if (def.window.is_cumulative()) {
      n = last;
    } else {
      n = last - def.window.l();
    }
    Sequence stored(def.window, def.fn, n, first, std::move(values));
    if (!stored.IsComplete()) {
      return Status::NotDerivable(
          "partitioning reduction requires a complete reporting function "
          "(header/trailer per partition)");
    }
    std::vector<SeqValue> raw;
    if (def.window.is_cumulative()) {
      RFV_ASSIGN_OR_RETURN(raw, RawFromCumulative(stored));
    } else {
      RFV_ASSIGN_OR_RETURN(raw, RawFromSlidingLinear(stored));
    }
    RFV_RETURN_IF_ERROR(sequence.AddPartition(key, std::move(raw)));
  }
  return sequence;
}

/// Writes a PartitionedSequence into a fresh content table and registers
/// the derived view metadata.
Result<const SequenceViewDef*> StoreDerived(
    ViewManager* views, SequenceViewDef def,
    const PartitionedSequence& sequence) {
  Schema schema;
  for (const std::string& name : def.partition_columns) {
    schema.AddColumn(ColumnDef(name, DataType::kInt64));
  }
  schema.AddColumn(ColumnDef("pos", DataType::kInt64));
  schema.AddColumn(ColumnDef("val", DataType::kDouble));
  Table* content = nullptr;
  {
    Result<Table*> r =
        views->catalog()->CreateTable(def.view_name, std::move(schema));
    if (!r.ok()) return r.status();
    content = *r;
  }
  std::vector<Row> rows;
  int64_t max_n = 0;
  for (size_t p = 0; p < sequence.num_partitions(); ++p) {
    const PartitionedSequence::Partition& part = sequence.partition(p);
    max_n = std::max(max_n, part.sequence.n());
    for (int64_t k = part.sequence.first_pos(); k <= part.sequence.last_pos();
         ++k) {
      Row row;
      for (int64_t kv : part.key) row.Append(Value::Int(kv));
      row.Append(Value::Int(k));
      row.Append(Value::Double(part.sequence.at(k)));
      rows.push_back(std::move(row));
    }
  }
  Status status = content->InsertBatch(std::move(rows));
  if (!status.ok()) {
    (void)views->catalog()->DropTable(def.view_name);
    return status;
  }
  if (def.indexed) {
    const size_t pos_col = def.partition_columns.size();
    RFV_RETURN_IF_ERROR(content->CreateIndex(
        def.view_name + "_pk", content->schema().column(pos_col).name));
  }
  def.n = max_n;
  def.derived = true;
  return views->AdoptView(std::move(def));
}

}  // namespace

Result<const SequenceViewDef*> ReduceViewPartitioning(
    ViewManager* views, const std::string& source_view,
    const std::string& target_view, size_t drop) {
  const SequenceViewDef* source = views->FindView(source_view);
  if (source == nullptr) {
    return Status::NotFound("view " + source_view + " is not registered");
  }
  if (source->partition_columns.empty()) {
    return Status::NotDerivable(
        "partitioning reduction requires a partitioned view");
  }
  if (drop < 1 || drop > source->partition_columns.size()) {
    return Status::InvalidArgument("invalid partition-column drop count");
  }
  if (views->FindView(target_view) != nullptr ||
      views->catalog()->HasTable(target_view)) {
    return Status::AlreadyExists("view " + target_view + " already exists");
  }

  PartitionedSequence loaded(source->window, source->fn);
  RFV_ASSIGN_OR_RETURN(loaded, LoadPartitionedSequence(*views, *source));
  PartitionedSequence reduced(source->window, source->fn);
  RFV_ASSIGN_OR_RETURN(reduced, loaded.ReducePartitioning(drop));

  SequenceViewDef def = *source;
  def.view_name = ToLower(target_view);
  def.partition_columns.resize(source->partition_columns.size() - drop);
  return StoreDerived(views, std::move(def), reduced);
}

Result<const SequenceViewDef*> ReduceViewOrdering(
    ViewManager* views, const std::string& source_view,
    const std::string& target_view, int64_t block) {
  const SequenceViewDef* source = views->FindView(source_view);
  if (source == nullptr) {
    return Status::NotFound("view " + source_view + " is not registered");
  }
  if (!source->window.is_cumulative() || source->fn != SeqAggFn::kSum) {
    return Status::NotDerivable(
        "ordering reduction is implemented for cumulative SUM views");
  }
  if (!source->partition_columns.empty()) {
    return Status::NotDerivable(
        "reduce partitioning before reducing the ordering");
  }
  if (block < 2) {
    return Status::InvalidArgument("block size must be at least 2");
  }
  if (views->FindView(target_view) != nullptr ||
      views->catalog()->HasTable(target_view)) {
    return Status::AlreadyExists("view " + target_view + " already exists");
  }
  if (source->n % block != 0) {
    return Status::NotDerivable(
        "the position space is not divisible into blocks of " +
        std::to_string(block));
  }

  Result<Table*> content = views->catalog()->GetTable(source->view_name);
  if (!content.ok()) return content.status();
  const Table& table = **content;
  const size_t pos_col = 0;
  const size_t val_col = 1;
  std::vector<SeqValue> fine(static_cast<size_t>(source->n), 0);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const int64_t pos = table.row(r)[pos_col].AsInt();
    if (pos >= 1 && pos <= source->n) {
      fine[static_cast<size_t>(pos - 1)] =
          table.row(r)[val_col].is_null()
              ? 0
              : table.row(r)[val_col].ToDouble();
    }
  }
  // The §6.1 lemma: coarse cumulative value = fine cumulative at the
  // block's last fine position (PositionSpace models the dense ordering).
  const PositionSpace space({source->n / block, block});
  std::vector<SeqValue> coarse;
  RFV_ASSIGN_OR_RETURN(coarse, OrderingReductionCumulative(space, fine, 1));

  SequenceViewDef def = *source;
  def.view_name = ToLower(target_view);

  PartitionedSequence holder(WindowSpec::Cumulative(), SeqAggFn::kSum);
  // Convert coarse cumulative back to raw block totals for storage via
  // the shared StoreDerived path.
  std::vector<SeqValue> totals = coarse;
  for (size_t b = totals.size(); b-- > 1;) totals[b] -= totals[b - 1];
  RFV_RETURN_IF_ERROR(holder.AddPartition({}, std::move(totals)));
  def.partition_columns.clear();
  return StoreDerived(views, std::move(def), holder);
}

}  // namespace rfv
