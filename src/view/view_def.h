#ifndef RFVIEW_VIEW_VIEW_DEF_H_
#define RFVIEW_VIEW_VIEW_DEF_H_

#include <string>
#include <vector>

#include "sequence/window_spec.h"

namespace rfv {

/// Metadata of a materialized reporting-function (sequence) view.
///
/// The view's *content* is an ordinary catalog table named `view_name`
/// with schema
///   [partition columns...,] pos INTEGER, val DOUBLE
/// holding the *complete* sequence (header positions -h+1..0 and trailer
/// n+1..n+l included, per partition when partitioned) — completeness is
/// the derivability prerequisite of paper §3.2/§6.2. The *metadata* here
/// is what the rewriter matches incoming queries against.
struct SequenceViewDef {
  std::string view_name;

  /// Source table and columns.
  std::string base_table;
  std::string value_column;   ///< aggregated measure column
  std::string order_column;   ///< dense 1..n position column (per partition)
  std::vector<std::string> partition_columns;  ///< empty = simple sequence

  SeqAggFn fn = SeqAggFn::kSum;
  WindowSpec window = WindowSpec::Cumulative();

  /// Number of raw positions n (largest partition for partitioned
  /// views; per-partition sizes live in the content table).
  int64_t n = 0;

  /// Whether an ordered index on `pos` was created ("with primary key
  /// index" in the paper's experiments).
  bool indexed = true;

  /// True for views derived from *other views* by the §6 reductions
  /// (view/reduction.h). Derived views live over a synthetic position
  /// space (concatenated partitions / collapsed ordering blocks), so
  /// they are excluded from base-table query rewriting and cannot be
  /// refreshed from the base table.
  bool derived = false;

  std::string ToString() const;
};

}  // namespace rfv

#endif  // RFVIEW_VIEW_VIEW_DEF_H_
