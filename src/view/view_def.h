#ifndef RFVIEW_VIEW_VIEW_DEF_H_
#define RFVIEW_VIEW_VIEW_DEF_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sequence/window_spec.h"

namespace rfv {

/// Copyable int64 cell with relaxed atomic access. A published
/// SequenceViewDef's `n` is rewritten by maintenance (which holds the
/// database write lock) while concurrent SELECTs read it lock-free
/// (rewriter candidate matching, rfv_system.views) — each individual
/// load/store must be atomic, but no ordering with other fields is
/// needed: n only changes together with the content table, and a reader
/// racing a refresh sees either the old or the new sequence length,
/// both of which were true of some committed state.
class RelaxedInt64 {
 public:
  RelaxedInt64(int64_t v = 0) : v_(v) {}  // NOLINT: implicit by design
  RelaxedInt64(const RelaxedInt64& other) : v_(other.load()) {}
  RelaxedInt64& operator=(const RelaxedInt64& other) {
    store(other.load());
    return *this;
  }
  RelaxedInt64& operator=(int64_t v) {
    store(v);
    return *this;
  }
  operator int64_t() const { return load(); }  // NOLINT: implicit by design
  int64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(int64_t v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_;
};

/// Metadata of a materialized reporting-function (sequence) view.
///
/// The view's *content* is an ordinary catalog table named `view_name`
/// with schema
///   [partition columns...,] pos INTEGER, val DOUBLE
/// holding the *complete* sequence (header positions -h+1..0 and trailer
/// n+1..n+l included, per partition when partitioned) — completeness is
/// the derivability prerequisite of paper §3.2/§6.2. The *metadata* here
/// is what the rewriter matches incoming queries against.
struct SequenceViewDef {
  std::string view_name;

  /// Source table and columns.
  std::string base_table;
  std::string value_column;   ///< aggregated measure column
  std::string order_column;   ///< dense 1..n position column (per partition)
  std::vector<std::string> partition_columns;  ///< empty = simple sequence

  SeqAggFn fn = SeqAggFn::kSum;
  WindowSpec window = WindowSpec::Cumulative();

  /// Number of raw positions n (largest partition for partitioned
  /// views; per-partition sizes live in the content table). Atomic
  /// cell: refreshed by maintenance while concurrent readers load it.
  RelaxedInt64 n = 0;

  /// Whether an ordered index on `pos` was created ("with primary key
  /// index" in the paper's experiments).
  bool indexed = true;

  /// True for views derived from *other views* by the §6 reductions
  /// (view/reduction.h). Derived views live over a synthetic position
  /// space (concatenated partitions / collapsed ordering blocks), so
  /// they are excluded from base-table query rewriting and cannot be
  /// refreshed from the base table.
  bool derived = false;

  std::string ToString() const;
};

}  // namespace rfv

#endif  // RFVIEW_VIEW_VIEW_DEF_H_
