#include "view/maintenance.h"

#include <algorithm>
#include <deque>

#include "common/metrics_registry.h"
#include "common/str_util.h"
#include "common/trace.h"

namespace rfv {

namespace {

/// Counts view-table rows written while propagating one base change.
void CountMaintenanceRows(const char* op, size_t rows) {
  Counter* c = MetricsRegistry::Global().GetCounter(
      "rfv_view_maintenance_rows_total", {{"op", op}},
      "Materialized-view rows written by incremental maintenance");
  c->Increment(static_cast<int64_t>(rows));
}

struct BaseBinding {
  Table* base = nullptr;
  size_t order_col = 0;
  size_t value_col = 0;
};

Result<BaseBinding> BindBase(Catalog* catalog, const SequenceViewDef& def) {
  BaseBinding binding;
  Result<Table*> base = catalog->GetTable(def.base_table);
  if (!base.ok()) return base.status();
  binding.base = *base;
  Result<size_t> c = binding.base->schema().FindColumn("", def.order_column);
  if (!c.ok()) return c.status();
  binding.order_col = *c;
  c = binding.base->schema().FindColumn("", def.value_column);
  if (!c.ok()) return c.status();
  binding.value_col = *c;
  return binding;
}

/// Finds the base row id holding `position` (via the position index
/// when one exists; UpdateCell on the value column keeps it warm).
Result<size_t> FindBaseRow(const BaseBinding& binding, int64_t position) {
  OrderedIndex* index = binding.base->GetIndexOnColumn(binding.order_col);
  if (index != nullptr) {
    const std::vector<size_t> hits = index->Lookup(Value::Int(position));
    if (!hits.empty()) return hits.front();
    return Status::NotFound("no base row at position " +
                            std::to_string(position));
  }
  for (size_t r = 0; r < binding.base->NumRows(); ++r) {
    const Value& v = binding.base->row(r)[binding.order_col];
    if (!v.is_null() && v.type() == DataType::kInt64 &&
        v.AsInt() == position) {
      return r;
    }
  }
  return Status::NotFound("no base row at position " +
                          std::to_string(position));
}

/// Fetches the base value at `position`, 0 when absent (paper padding).
double BaseValueAt(const BaseBinding& binding, int64_t position) {
  for (size_t r = 0; r < binding.base->NumRows(); ++r) {
    const Row& row = binding.base->row(r);
    const Value& p = row[binding.order_col];
    if (!p.is_null() && p.type() == DataType::kInt64 &&
        p.AsInt() == position) {
      const Value& v = row[binding.value_col];
      return v.is_null() ? 0 : v.ToDouble();
    }
  }
  return 0;
}

/// Dependent non-partitioned views of `base_table`.
std::vector<const SequenceViewDef*> DependentViews(
    const ViewManager& views, const std::string& base_table) {
  std::vector<const SequenceViewDef*> out;
  for (const auto& v : views.views()) {
    if (EqualsIgnoreCase(v->base_table, base_table) &&
        v->partition_columns.empty()) {
      out.push_back(v.get());
    }
  }
  return out;
}

/// Writes `val` into the view row at `pos` (via the pos index when
/// available). Returns rows written (0 when the position is outside the
/// view's stored range).
Result<size_t> WriteViewValue(Table* content, int64_t pos, double val) {
  // For simple views pos is the second-to-last column and val the last
  // (partitioned views are refreshed wholesale, not routed here).
  const size_t pos_col = content->schema().NumColumns() - 2;
  const size_t val_col = content->schema().NumColumns() - 1;
  OrderedIndex* pos_index = content->GetIndexOnColumn(pos_col);
  size_t written = 0;
  if (pos_index != nullptr) {
    for (size_t r : pos_index->Lookup(Value::Int(pos))) {
      RFV_RETURN_IF_ERROR(content->UpdateCell(r, val_col, Value::Double(val)));
      ++written;
    }
  } else {
    for (size_t r = 0; r < content->NumRows(); ++r) {
      const Value& p = content->row(r)[pos_col];
      if (!p.is_null() && p.AsInt() == pos) {
        RFV_RETURN_IF_ERROR(
            content->UpdateCell(r, val_col, Value::Double(val)));
        ++written;
      }
    }
  }
  return written;
}

/// Adds `delta` to the view rows with pos in [lo, hi]. Uses the pos
/// index; UpdateCell marks indexes dirty, so collect row ids first.
Result<size_t> AddDeltaRange(Table* content, int64_t lo, int64_t hi,
                             double delta) {
  const size_t pos_col = content->schema().NumColumns() - 2;
  const size_t val_col = content->schema().NumColumns() - 1;
  std::vector<size_t> row_ids;
  OrderedIndex* pos_index = content->GetIndexOnColumn(pos_col);
  if (pos_index != nullptr) {
    row_ids = pos_index->LookupRange(Value::Int(lo), true, Value::Int(hi),
                                     true);
  } else {
    for (size_t r = 0; r < content->NumRows(); ++r) {
      const Value& p = content->row(r)[pos_col];
      if (!p.is_null() && p.AsInt() >= lo && p.AsInt() <= hi) {
        row_ids.push_back(r);
      }
    }
  }
  for (size_t r : row_ids) {
    const Value& old = content->row(r)[val_col];
    const double base = old.is_null() ? 0 : old.ToDouble();
    RFV_RETURN_IF_ERROR(
        content->UpdateCell(r, val_col, Value::Double(base + delta)));
  }
  return row_ids.size();
}

}  // namespace

Result<size_t> PropagateBaseUpdate(ViewManager* views,
                                   const std::string& base_table,
                                   int64_t position, double new_value) {
  TraceSpan span("view.maintain.update");
  if (span.active()) span.AddArg("base", base_table);
  const std::vector<const SequenceViewDef*> dependents =
      DependentViews(*views, base_table);
  size_t touched = 0;
  double old_value = 0;
  bool base_updated = false;

  for (const SequenceViewDef* def : dependents) {
    BaseBinding binding;
    RFV_ASSIGN_OR_RETURN(binding, BindBase(views->catalog(), *def));
    if (!base_updated) {
      size_t row_id = 0;
      RFV_ASSIGN_OR_RETURN(row_id, FindBaseRow(binding, position));
      const Value& old = binding.base->row(row_id)[binding.value_col];
      old_value = old.is_null() ? 0 : old.ToDouble();
      RFV_RETURN_IF_ERROR(binding.base->UpdateCell(
          row_id, binding.value_col, Value::Double(new_value)));
      base_updated = true;
    }
    Result<Table*> content = views->catalog()->GetTable(def->view_name);
    if (!content.ok()) return content.status();

    size_t view_touched = 0;
    if (def->fn == SeqAggFn::kSum) {
      const double delta = new_value - old_value;
      if (def->window.is_cumulative()) {
        RFV_ASSIGN_OR_RETURN(
            view_touched, AddDeltaRange(*content, position, def->n, delta));
      } else {
        RFV_ASSIGN_OR_RETURN(
            view_touched,
            AddDeltaRange(*content, position - def->window.h(),
                          position + def->window.l(), delta));
      }
    } else {
      // MIN/MAX: recompute the affected windows from base data with a
      // monotonic deque over the span they cover.
      if (def->window.is_cumulative()) {
        // RefreshView records this as a full refresh, not incremental.
        RFV_RETURN_IF_ERROR(views->RefreshView(def->view_name));
        touched += static_cast<size_t>((*content)->NumRows());
        continue;
      }
      const int64_t l = def->window.l();
      const int64_t h = def->window.h();
      const int64_t from = position - h;
      const int64_t to = position + l;
      const bool is_min = def->fn == SeqAggFn::kMin;
      std::deque<std::pair<int64_t, double>> mono;
      // MIN/MAX windows clip to [1, n] (see sequence/compute.cc).
      int64_t next = std::max<int64_t>(from - l, 1);
      for (int64_t k = from; k <= to; ++k) {
        const int64_t hi = std::min(k + h, def->n.load());
        for (; next <= hi; ++next) {
          const double v = BaseValueAt(binding, next);
          while (!mono.empty() && (is_min ? mono.back().second >= v
                                          : mono.back().second <= v)) {
            mono.pop_back();
          }
          mono.emplace_back(next, v);
        }
        while (!mono.empty() && mono.front().first < k - l) mono.pop_front();
        size_t w = 0;
        RFV_ASSIGN_OR_RETURN(
            w, WriteViewValue(*content, k,
                              mono.empty() ? 0 : mono.front().second));
        view_touched += w;
      }
    }
    views->NoteIncrementalUpdate(def->view_name,
                                 static_cast<int64_t>(view_touched));
    touched += view_touched;
  }
  if (!base_updated) {
    return Status::NotFound(
        "no dependent sequence views for table " + base_table +
        " (update the base table directly via SQL)");
  }
  CountMaintenanceRows("update", touched);
  if (span.active()) span.AddArg("rows", std::to_string(touched));
  return touched;
}

Result<size_t> PropagateBaseInsert(ViewManager* views,
                                   const std::string& base_table,
                                   int64_t position, double value) {
  TraceSpan span("view.maintain.insert");
  if (span.active()) span.AddArg("base", base_table);
  const std::vector<const SequenceViewDef*> dependents =
      DependentViews(*views, base_table);
  if (dependents.empty()) {
    return Status::NotFound("no dependent sequence views for " + base_table);
  }
  BaseBinding binding;
  RFV_ASSIGN_OR_RETURN(binding, BindBase(views->catalog(), *dependents[0]));
  if (binding.base->schema().NumColumns() != 2) {
    return Status::NotSupported(
        "positional insert requires a two-column (pos, val) base table");
  }
  // Shift positions >= position up by one, then insert.
  for (size_t r = 0; r < binding.base->NumRows(); ++r) {
    const Value& p = binding.base->row(r)[binding.order_col];
    if (!p.is_null() && p.AsInt() >= position) {
      RFV_RETURN_IF_ERROR(binding.base->UpdateCell(
          r, binding.order_col, Value::Int(p.AsInt() + 1)));
    }
  }
  Row row;
  row.Append(Value::Null());
  row.Append(Value::Null());
  row[binding.order_col] = Value::Int(position);
  row[binding.value_col] = Value::Double(value);
  RFV_RETURN_IF_ERROR(binding.base->Insert(std::move(row)));

  size_t touched = 0;
  for (const SequenceViewDef* def : dependents) {
    RFV_RETURN_IF_ERROR(views->RefreshView(def->view_name));
    Result<Table*> content = views->catalog()->GetTable(def->view_name);
    if (!content.ok()) return content.status();
    touched += static_cast<size_t>((*content)->NumRows());
  }
  CountMaintenanceRows("insert", touched);
  if (span.active()) span.AddArg("rows", std::to_string(touched));
  return touched;
}

Result<size_t> PropagateBaseDelete(ViewManager* views,
                                   const std::string& base_table,
                                   int64_t position) {
  TraceSpan span("view.maintain.delete");
  if (span.active()) span.AddArg("base", base_table);
  const std::vector<const SequenceViewDef*> dependents =
      DependentViews(*views, base_table);
  if (dependents.empty()) {
    return Status::NotFound("no dependent sequence views for " + base_table);
  }
  BaseBinding binding;
  RFV_ASSIGN_OR_RETURN(binding, BindBase(views->catalog(), *dependents[0]));
  size_t row_id = 0;
  RFV_ASSIGN_OR_RETURN(row_id, FindBaseRow(binding, position));
  RFV_RETURN_IF_ERROR(binding.base->DeleteRow(row_id));
  for (size_t r = 0; r < binding.base->NumRows(); ++r) {
    const Value& p = binding.base->row(r)[binding.order_col];
    if (!p.is_null() && p.AsInt() > position) {
      RFV_RETURN_IF_ERROR(binding.base->UpdateCell(
          r, binding.order_col, Value::Int(p.AsInt() - 1)));
    }
  }
  size_t touched = 0;
  for (const SequenceViewDef* def : dependents) {
    RFV_RETURN_IF_ERROR(views->RefreshView(def->view_name));
    Result<Table*> content = views->catalog()->GetTable(def->view_name);
    if (!content.ok()) return content.status();
    touched += static_cast<size_t>((*content)->NumRows());
  }
  CountMaintenanceRows("delete", touched);
  if (span.active()) span.AddArg("rows", std::to_string(touched));
  return touched;
}

}  // namespace rfv
