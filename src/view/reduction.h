#ifndef RFVIEW_VIEW_REDUCTION_H_
#define RFVIEW_VIEW_REDUCTION_H_

#include <string>

#include "common/status.h"
#include "view/view_manager.h"

namespace rfv {

/// Storage-level reporting-sequence reductions (paper §6): derive a new
/// materialized sequence view *from an existing view's content* — never
/// from base data — exercising the §6.1/§6.2 lemmas end to end.

/// Partitioning reduction (paper §6.2): `source_view` must be a
/// partitioned SUM view (a *complete reporting function* — every
/// partition carries header/trailer). Drops the right-most `drop`
/// partition columns: partitions sharing the remaining prefix are merged
/// by reconstructing their raw data from the stored sequences,
/// concatenating in partition order, and re-sequencing under the same
/// window. The result is registered as `target_view` (same base-table
/// metadata, reduced partition columns).
///
/// Errors: kNotFound (unknown view), kNotDerivable (not complete / not
/// SUM / not partitioned), kInvalidArgument (drop count),
/// kAlreadyExists (target name).
Result<const SequenceViewDef*> ReduceViewPartitioning(
    ViewManager* views, const std::string& source_view,
    const std::string& target_view, size_t drop);

/// Ordering reduction (paper §6.1): `source_view` must be a
/// *cumulative* SUM view over a dense multi-column ordering that was
/// linearized into positions via pos() with `block` fine positions per
/// coarse position (the product of the dropped ordering columns'
/// cardinalities). Produces the coarse cumulative view: one position per
/// block, value = fine cumulative at the block's last fine position
/// (the lemma's w'_H bound). Registered as `target_view`.
///
/// Errors: kNotFound, kNotDerivable (not cumulative SUM / not
/// divisible), kInvalidArgument (block < 2), kAlreadyExists.
Result<const SequenceViewDef*> ReduceViewOrdering(
    ViewManager* views, const std::string& source_view,
    const std::string& target_view, int64_t block);

}  // namespace rfv

#endif  // RFVIEW_VIEW_REDUCTION_H_
