#!/usr/bin/env python3
"""Validates a Prometheus text-exposition file (CI smoke check).

Checks the subset of the format the engine emits: `# HELP` / `# TYPE`
comments, `name{labels} value` samples, counter/histogram conventions
(histograms need _bucket/_sum/_count series and a `+Inf` bucket).
Exits non-zero with a line-numbered message on the first violation.
"""

import re
import sys

METRIC_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf|NaN))$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$')


def fail(lineno, line, why):
    sys.exit(f"{sys.argv[1]}:{lineno}: {why}\n  {line}")


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <metrics.prom>")
    with open(sys.argv[1], encoding="utf-8") as f:
        lines = f.read().splitlines()

    typed = {}  # family name -> declared type
    samples = {}  # family name -> sample count
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                fail(lineno, line, "malformed comment line")
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary"):
                    fail(lineno, line, f"unknown metric type {parts[3]!r}")
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = METRIC_RE.match(line)
        if m is None:
            fail(lineno, line, "not a valid sample line")
        labels = m.group("labels")
        if labels is not None:
            body = labels[1:-1]
            for pair in filter(None, body.split(",")):
                if not LABEL_RE.match(pair):
                    fail(lineno, line, f"bad label pair {pair!r}")
        name = m.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        samples[family] = samples.get(family, 0) + 1
        if name.endswith("_bucket") and (labels is None or "le=" not in labels):
            fail(lineno, line, "_bucket sample without an le label")

    if not samples:
        sys.exit(f"{sys.argv[1]}: no samples found")
    for family, mtype in typed.items():
        if family not in samples:
            fail(0, family, "declared family has no samples")
        if mtype == "histogram":
            text = "\n".join(lines)
            for suffix in ("_bucket", "_sum", "_count"):
                if family + suffix not in text:
                    sys.exit(f"histogram {family} missing {suffix} series")
            if f'{family}_bucket' in text and 'le="+Inf"' not in text:
                sys.exit(f"histogram {family} has no +Inf bucket")
    print(
        f"ok: {sum(samples.values())} samples across "
        f"{len(samples)} families ({len(typed)} typed)"
    )


if __name__ == "__main__":
    main()
