#!/usr/bin/env python3
"""Validates a captured-workload JSONL file (CI smoke check).

The file is `\\workload export` / `Database::ExportWorkload` output: one
JSON object per line, one line per Execute() call. Checks the schema the
view advisor consumes — fingerprint, per-phase timings, the rewrite
decision record (decision/view/cost_estimate/candidates), row counts and
operator metrics — plus cross-field consistency (a non-"none" decision
names a view and a chosen candidate; SELECT events carry phase timings).
Exits non-zero with a line-numbered message on the first violation.
"""

import json
import sys

REQUIRED = {
    "query_id": int,
    "kind": str,
    "status": str,
    "error": str,
    "sql": str,
    "fingerprint": str,
    "duration_ms": (int, float),
    "phases": dict,
    "rows_in": int,
    "rows_out": int,
    "rewrite": dict,
    "operators": list,
}
REWRITE_REQUIRED = {
    "decision": str,
    "view": str,
    "cost_estimate": (int, float, type(None)),
    "candidates": list,
}
CANDIDATE_REQUIRED = {
    "view": str,
    "derivable": bool,
    "method": str,
    "chosen": bool,
    "cost": (int, float, type(None)),
}
OPERATOR_REQUIRED = {
    "op": str,
    "depth": int,
    "rows_in": int,
    "rows_out": int,
    "next_calls": int,
    "open_ms": (int, float),
    "next_ms": (int, float),
}


def fail(lineno, why):
    sys.exit(f"{sys.argv[1]}:{lineno}: {why}")


def check_fields(lineno, obj, spec, where):
    for key, types in spec.items():
        if key not in obj:
            fail(lineno, f"{where} missing field {key!r}")
        if not isinstance(obj[key], types):
            fail(
                lineno,
                f"{where}.{key} has type {type(obj[key]).__name__}, "
                f"expected {types}",
            )


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <workload.jsonl>")
    with open(sys.argv[1], encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        sys.exit(f"{sys.argv[1]}: empty workload")

    rewrites = 0
    selects = 0
    for lineno, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"not valid JSON: {e}")
        check_fields(lineno, event, REQUIRED, "event")
        if not event["fingerprint"]:
            fail(lineno, "empty fingerprint")
        if event["status"] == "ok" and event["error"]:
            fail(lineno, "ok status with non-empty error")
        for phase, ms in event["phases"].items():
            if not isinstance(ms, (int, float)) or ms < 0:
                fail(lineno, f"phase {phase!r} has bad duration {ms!r}")

        rewrite = event["rewrite"]
        check_fields(lineno, rewrite, REWRITE_REQUIRED, "rewrite")
        for cand in rewrite["candidates"]:
            check_fields(lineno, cand, CANDIDATE_REQUIRED, "candidate")
        if rewrite["decision"] != "none":
            rewrites += 1
            if not rewrite["view"]:
                fail(lineno, "rewrite decision without a view name")
            # Forced-method / static-order paths legitimately record no
            # per-candidate verdicts; when verdicts exist one is chosen.
            if rewrite["candidates"] and not any(
                c["chosen"] for c in rewrite["candidates"]
            ):
                fail(lineno, "rewrite decision without a chosen candidate")
        for op in event["operators"]:
            check_fields(lineno, op, OPERATOR_REQUIRED, "operator")

        if event["kind"] == "select" and event["status"] == "ok":
            selects += 1
            if "execute" not in event["phases"]:
                fail(lineno, "ok select without an execute phase")

    if selects == 0:
        sys.exit(f"{sys.argv[1]}: no successful SELECT events captured")
    print(
        f"ok: {len(lines)} events ({selects} selects, "
        f"{rewrites} rewritten)"
    )


if __name__ == "__main__":
    main()
