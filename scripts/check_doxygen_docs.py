#!/usr/bin/env python3
"""Fail when a public declaration in a header lacks a Doxygen comment.

Usage: check_doxygen_docs.py [header-or-directory ...]

Defaults to src/stats (the statistics/cost-model subsystem, whose CI
docs job gates on this script). Runs anywhere Python 3 runs — no
doxygen needed — so the same check works locally and in CI:

    python3 scripts/check_doxygen_docs.py          # src/stats headers
    python3 scripts/check_doxygen_docs.py src      # whole tree

A declaration is "documented" when the nearest preceding non-blank
line is a Doxygen comment (``///`` or a ``/** ... */`` block) or the
declaration carries a trailing ``///<``. Consecutive declarations
under one doc comment form a group and share it (Doxygen renders them
adjacently; splitting the comment adds nothing), but a blank line
breaks the group, so stray undocumented members still fail.

The parser is deliberately structural, not a C++ front end: it looks
at top-level (indent 0) and aggregate-member (indent 2) lines only,
which matches this repo's enforced clang-format layout. Continuation
lines of multi-line signatures are indented deeper and ignored.
"""

import pathlib
import re
import sys

# Lines that can never *start* a public declaration.
SKIP_RE = re.compile(
    r"^\s*($|#|//|/\*|\*|\}|\)|namespace\b|public:|private:|protected:|"
    r"using\b|template\b|friend\b|typedef\b|return\b|if\b|for\b|while\b|"
    r"switch\b|case\b|default:|else\b|extern\b)"
)

# A declaration start at the indents we inspect: a type-ish token
# followed by more tokens, ending in ';', '{', ',' or an open paren
# somewhere on the line. Examples: "struct CostEstimate {",
# "double min_value = 0;", "CostEstimate EstimateDirectCost(".
DECL_RE = re.compile(r"^(struct|class|enum)\s+\w+|^[A-Za-z_][\w:<>,&*\s]*\s[\w~&*]+\s*[({=;[]")


def check_header(path: pathlib.Path) -> list:
    violations = []
    in_block_comment = False
    # True while the current run of adjacent declarations is covered by
    # a doc comment; any blank or non-declaration line resets it.
    in_doc_group = False
    prev_was_doc = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()

        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
                prev_was_doc = True
            continue
        if stripped.startswith("/**") or stripped.startswith("/*!"):
            if "*/" not in stripped:
                in_block_comment = True
            else:
                prev_was_doc = True
            continue
        if stripped.startswith("///"):
            prev_was_doc = True
            continue
        if not stripped:
            prev_was_doc = False
            in_doc_group = False
            continue

        indent = len(line) - len(line.lstrip())
        if indent not in (0, 2) or SKIP_RE.match(line) or not DECL_RE.match(stripped):
            prev_was_doc = False
            if indent not in (0, 2):
                continue  # continuation / body line: keep the group alive
            in_doc_group = False
            continue

        documented = prev_was_doc or in_doc_group or "///<" in line
        if not documented:
            violations.append((path, lineno, stripped))
        in_doc_group = documented
        prev_was_doc = False
    return violations


def collect_headers(args: list) -> list:
    roots = [pathlib.Path(a) for a in args] or [pathlib.Path("src/stats")]
    headers = []
    for root in roots:
        if root.is_dir():
            headers.extend(sorted(root.rglob("*.h")))
        else:
            headers.append(root)
    return headers


def main() -> int:
    headers = collect_headers(sys.argv[1:])
    if not headers:
        print("check_doxygen_docs: no headers found", file=sys.stderr)
        return 2
    violations = []
    for header in headers:
        violations.extend(check_header(header))
    for path, lineno, text in violations:
        print(f"{path}:{lineno}: undocumented public declaration: {text}")
    print(
        f"check_doxygen_docs: {len(headers)} header(s), "
        f"{len(violations)} undocumented declaration(s)"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
