#!/usr/bin/env python3
"""Guard-rails the A8 execution-mode sweep against a committed baseline.

Usage: check_bench_regression.py <BENCH_derive.json> [baseline.json]

Reads the bench-smoke JSON artifact (bench/json_reporter.h schema) and
compares every benchmark named in the committed baseline
(scripts/bench_baseline.json) against its recorded ns_per_op. A run
fails the gate when it is more than `max_ratio` (default 2.0) times
slower than baseline — wide enough to absorb CI-runner noise and the
deliberately tiny --benchmark_min_time smoke runs, narrow enough to
catch an accidental fallback from the vector join paths to the row
paths (a >2.5x cliff on the tracked entries).

Benchmarks present in the artifact but absent from the baseline are
ignored (new benchmarks don't need a baseline entry to land); baseline
entries missing from the artifact fail, so renames must update both.
Exits non-zero with one line per violation.
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__),
                                "bench_baseline.json")


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(f"usage: {sys.argv[0]} <BENCH_derive.json> [baseline.json]")
    artifact_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) == 3 else DEFAULT_BASELINE

    with open(artifact_path, encoding="utf-8") as f:
        runs = {r["name"]: r for r in json.load(f)["benchmarks"]}
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    max_ratio = float(baseline.get("max_ratio", 2.0))
    violations = []
    for name, entry in sorted(baseline["benchmarks"].items()):
        base_ns = float(entry["ns_per_op"])
        run = runs.get(name)
        if run is None:
            violations.append(f"{name}: tracked in baseline but missing "
                              f"from {artifact_path}")
            continue
        ns = float(run["ns_per_op"])
        ratio = ns / base_ns if base_ns > 0 else float("inf")
        status = "FAIL" if ratio > max_ratio else "ok"
        print(f"{status:4} {name}: {ns / 1e6:.2f} ms vs baseline "
              f"{base_ns / 1e6:.2f} ms ({ratio:.2f}x, limit {max_ratio}x)")
        if ratio > max_ratio:
            violations.append(f"{name}: {ratio:.2f}x slower than baseline "
                              f"(limit {max_ratio}x)")

    if violations:
        sys.exit("bench regression gate failed:\n  " +
                 "\n  ".join(violations))
    print(f"bench regression gate passed "
          f"({len(baseline['benchmarks'])} tracked entries)")


if __name__ == "__main__":
    main()
