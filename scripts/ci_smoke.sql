\trace on
CREATE TABLE seq (pos INTEGER PRIMARY KEY, val DOUBLE);
INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60), (7, 70), (8, 80);
CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) FROM seq;
EXPLAIN ANALYZE SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) FROM seq ORDER BY pos;
EXPLAIN UPDATE seq SET val = 0 WHERE pos = 3;
EXPLAIN ANALYZE DELETE FROM seq WHERE pos = 8;
SELECT query_id, kind, status, rows_out FROM rfv_system.queries ORDER BY query_id;
SELECT query_id, duration_ms, RANK() OVER (ORDER BY duration_ms DESC) FROM rfv_system.queries;
SELECT op, rows_out FROM rfv_system.operators WHERE op = 'scan';
SELECT name, kind, count FROM rfv_system.metrics WHERE name = 'rfv_queries_executed_total';
SELECT view_name, base_table, fn, n, full_refreshes FROM rfv_system.views;
SELECT table_name, column_name, row_count FROM rfv_system.table_stats WHERE table_name = 'seq';
SELECT name, COUNT(*) FROM rfv_system.trace_spans GROUP BY name ORDER BY name;
\workload export ci_workload.jsonl
\trace export ci_trace.json
\metrics save ci_metrics.prom
.metrics
\quit
